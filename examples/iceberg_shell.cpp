// An interactive Smart-Iceberg shell: loads the demo workloads and accepts
// SQL on stdin. Meta-commands:
//   \explain <sql>   show the Smart-Iceberg plan (reducers + NLJP parts)
//   \base <sql>      run on the baseline executor instead
//   \govern [deadline_ms] [budget_kb]   set per-statement resource limits
//                    (0 0 clears them); governed statements report
//                    degradations and trip with Cancelled/ResourceExhausted
//   \threads [N]     worker threads for later statements (0 = auto,
//                    1 = serial); parallel output is canonically sorted
//   \sessions [N]    fan every later statement out across N concurrent
//                    serving sessions (thread-per-session, admission
//                    control, retries) and verify the results are
//                    byte-identical; N=1 (default) serves on one session
//   \retry [N]       total attempts per statement for retryable failures
//                    (admission sheds, snapshot conflicts, chaos faults)
//   \chaos seed N [cancel alloc shed delay]   enable the deterministic
//                    fault-injection schedule (rates are 1-in-K per site,
//                    defaults from the soak profile); \chaos off disables
//   \tables          list tables
//   \load <table> <csv-path>   bulk-load a CSV file
//   \metrics [json|reset]   dump the global metrics registry (counters,
//                    gauges, latency histograms); `reset` zeroes it
//   \trace on|off    enable/disable query tracing (spans also honour the
//                    ICEBERG_TRACE env var at startup)
//   \trace dump <file>   write collected spans as Chrome trace_event JSON
//                    (load in Perfetto / chrome://tracing)
//   \vectorize on|off   toggle the vectorized (columnar batch) scan path;
//                    also honours the ICEBERG_VECTORIZE env var at startup
//   \transfer on|off   toggle the predicate-transfer graph (fixpoint Bloom
//                    propagation across join edges); also honours the
//                    ICEBERG_PREDICATE_TRANSFER env var at startup
//   \plancache on|off|status   toggle the shape-keyed plan/program cache
//                    (off also clears it); also honours ICEBERG_PLAN_CACHE
//                    at startup; status prints entry/hit/miss counters
//   \queries [n]     flight recorder: the most recent n (default 20)
//                    query-attempt records (engine, status, latency,
//                    admission wait, governor peak, plan-cache provenance,
//                    transfer stats, chaos annotations)
//   \slow [n]        recent slow records (past the armed threshold, or
//                    carrying a capture), plus the newest capture payload
//                    (EXPLAIN ANALYZE tree + trace slice)
//   \slow threshold <us>   arm slow-query capture at `us` (0 disarms);
//                    also honours ICEBERG_SLOW_QUERY_US at startup
//   \querylog on|off|clear|shapes|slo <us>|dump <file>|status
//                    flight-recorder control: chicken bit (also
//                    ICEBERG_QUERY_LOG=0 at startup), per-shape p50/p99
//                    latency table with SLO violation counts, default
//                    latency SLO, JSONL export of the ring
//   \q               quit
// Anything else is executed through the serving layer (session + admission
// + retry) with the Smart-Iceberg optimizer; statements starting with
// EXPLAIN ANALYZE return the annotated plan tree instead of the result
// rows. \govern-ed statements run directly (one governor, no retry), so
// trips surface verbatim.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/csv.h"
#include "src/engine/database.h"
#include "src/expr/compiled.h"
#include "src/obs/metrics.h"
#include "src/obs/query_log.h"
#include "src/obs/trace.h"
#include "src/server/chaos.h"
#include "src/server/session.h"
#include "src/stats/column_stats.h"
#include "src/workload/baseball.h"
#include "src/workload/basket.h"
#include "src/workload/object.h"

namespace {

using namespace iceberg;

// Per-statement resource limits set via \govern (a fresh QueryGovernor is
// built for every statement; governors are single-use).
QueryGovernor::Limits g_limits;
bool g_governed = false;

// Worker threads applied to every later statement (0 = auto, 1 = serial);
// set via \threads.
int g_threads = 0;

// Serving settings (\sessions, \retry). The server is rebuilt lazily when
// any of them change; the database itself persists.
int g_sessions = 1;
int g_retry_attempts = 4;
std::unique_ptr<IcebergServer> g_server;

GovernorPtr MakeGovernor() {
  return g_governed ? std::make_shared<QueryGovernor>(g_limits) : nullptr;
}

IcebergServer* GetServer(Database* db) {
  if (g_server == nullptr) {
    ServerConfig config;
    config.admission.max_concurrent = static_cast<size_t>(
        std::max(1, g_sessions));
    config.admission.max_queue_depth = 16;
    config.admission.queue_timeout_ms = 10000;
    config.retry.max_attempts = g_retry_attempts;
    config.default_threads = g_threads;
    g_server = std::make_unique<IcebergServer>(db, config);
  }
  return g_server.get();
}

std::string CanonicalRender(const TablePtr& table) {
  std::vector<Row> rows = table->rows();
  std::sort(rows.begin(), rows.end(), RowLess{});
  std::string out;
  for (const Row& row : rows) {
    out += RowToString(row);
    out += '\n';
  }
  return out;
}

/// Serves one statement on g_sessions concurrent sessions and prints the
/// first session's result plus a fan-out summary (identical-or-retryable
/// is the serving layer's chaos invariant; the shell checks it live).
void ServeStatement(Database* db, const std::string& sql) {
  IcebergServer* server = GetServer(db);
  const int n = std::max(1, g_sessions);
  std::vector<QueryOutcome> outcomes(static_cast<size_t>(n));
  if (n == 1) {
    auto session = server->OpenSession();
    outcomes[0] = session->Execute(sql);
  } else {
    std::vector<std::thread> threads;
    for (int i = 0; i < n; ++i) {
      threads.emplace_back([server, &outcomes, &sql, i] {
        auto session = server->OpenSession();
        outcomes[static_cast<size_t>(i)] = session->Execute(sql);
      });
    }
    for (auto& t : threads) t.join();
  }

  const QueryOutcome* shown = nullptr;
  int ok = 0, shed = 0, failed = 0, max_attempts = 0;
  bool identical = true;
  std::string reference;
  for (const QueryOutcome& outcome : outcomes) {
    max_attempts = std::max(max_attempts, outcome.attempts);
    if (outcome.status.ok()) {
      ++ok;
      std::string render = CanonicalRender(outcome.table);
      if (reference.empty()) {
        reference = render;
        shown = &outcome;
      } else if (render != reference) {
        identical = false;
      }
    } else if (outcome.status.IsRetryable()) {
      ++shed;
    } else {
      ++failed;
      if (shown == nullptr) shown = &outcome;
    }
  }

  if (shown == nullptr) shown = &outcomes[0];
  if (shown->status.ok()) {
    std::printf("%s", FormatTable(*shown->table).c_str());
    const IcebergReport& report = shown->report;
    if (!report.steps.empty() || report.used_nljp) {
      std::printf("-- optimizer: ");
      for (size_t i = 0; i < report.steps.size(); ++i) {
        if (i > 0) std::printf("; ");
        std::printf("%s", report.steps[i].c_str());
      }
      std::printf("\n");
    }
    for (const std::string& d : report.degradations) {
      std::printf("-- degraded: %s\n", d.c_str());
    }
  } else {
    std::printf("%s\n", shown->status.ToString().c_str());
  }
  if (n > 1 || max_attempts > 1 || shed > 0) {
    std::printf("-- serving: sessions=%d ok=%d shed=%d failed=%d "
                "max_attempts=%d identical=%s\n",
                n, ok, shed, failed, max_attempts,
                identical ? "yes" : "NO (BUG)");
  }
}

void RunStatement(Database* db, const std::string& line) {
  if (line.rfind("\\threads", 0) == 0) {
    std::istringstream args(line.substr(8));
    int n = -1;
    args >> n;
    if (n < 0) {
      std::printf("threads=%d (0 = auto, 1 = serial)\n", g_threads);
      return;
    }
    g_threads = n;
    g_server.reset();  // rebuild with the new per-query thread setting
    std::printf("threads=%d\n", g_threads);
    return;
  }
  if (line.rfind("\\sessions", 0) == 0) {
    std::istringstream args(line.substr(9));
    int n = -1;
    args >> n;
    if (n < 1) {
      std::printf("sessions=%d (statements fan out across N concurrent "
                  "serving sessions)\n",
                  g_sessions);
      return;
    }
    g_sessions = n;
    g_server.reset();
    std::printf("sessions=%d\n", g_sessions);
    return;
  }
  if (line.rfind("\\retry", 0) == 0) {
    std::istringstream args(line.substr(6));
    int n = -1;
    args >> n;
    if (n < 1) {
      std::printf("retry attempts=%d (retryable failures back off "
                  "exponentially with deterministic jitter)\n",
                  g_retry_attempts);
      return;
    }
    g_retry_attempts = n;
    g_server.reset();
    std::printf("retry attempts=%d\n", g_retry_attempts);
    return;
  }
  if (line.rfind("\\chaos", 0) == 0) {
    std::istringstream args(line.substr(6));
    std::string arg;
    args >> arg;
    if (arg == "off") {
      ChaosSchedule::SetGlobal(ChaosConfig{});
      std::printf("chaos off\n");
    } else if (arg == "seed") {
      unsigned long long seed = 0;
      args >> seed;
      if (seed == 0) {
        std::printf("usage: \\chaos seed N [cancel alloc shed delay]\n");
        return;
      }
      ChaosConfig config = ChaosConfig::Soak(seed);
      unsigned cancel = 0, alloc = 0, shed = 0, delay = 0;
      if (args >> cancel >> alloc >> shed >> delay) {
        config.cancel_every = cancel;
        config.alloc_fail_every = alloc;
        config.shed_storm_every = shed;
        config.delay_every = delay;
      }
      ChaosSchedule::SetGlobal(config);
      std::printf("chaos on: seed=%llu cancel=1/%u alloc=1/%u shed=1/%u "
                  "delay=1/%u (deterministic; replay with the same seed)\n",
                  seed, config.cancel_every, config.alloc_fail_every,
                  config.shed_storm_every, config.delay_every);
    } else {
      ChaosConfig config = ChaosSchedule::Global();
      if (config.enabled()) {
        std::printf("chaos on: seed=%llu cancel=1/%u alloc=1/%u shed=1/%u "
                    "delay=1/%u\n",
                    static_cast<unsigned long long>(config.seed),
                    config.cancel_every, config.alloc_fail_every,
                    config.shed_storm_every, config.delay_every);
      } else {
        std::printf("chaos off  (usage: \\chaos seed N [cancel alloc shed "
                    "delay] | \\chaos off)\n");
      }
    }
    return;
  }
  if (line.rfind("\\govern", 0) == 0) {
    std::istringstream args(line.substr(7));
    long long deadline_ms = 0;
    long long budget_kb = 0;
    args >> deadline_ms >> budget_kb;
    if (deadline_ms <= 0 && budget_kb <= 0) {
      g_governed = false;
      std::printf("governor cleared\n");
      return;
    }
    g_limits = QueryGovernor::Limits();
    g_limits.deadline_ms = deadline_ms > 0 ? deadline_ms : -1;
    g_limits.memory_budget_bytes =
        budget_kb > 0 ? static_cast<size_t>(budget_kb) * 1024 : 0;
    g_governed = true;
    std::printf("governing: deadline=%lldms budget=%lldkb\n", deadline_ms,
                budget_kb);
    return;
  }
  if (line.rfind("\\metrics", 0) == 0) {
    std::string arg;
    std::istringstream(line.substr(8)) >> arg;
    if (arg == "reset") {
      MetricsRegistry::Global().ResetAll();
      std::printf("metrics reset\n");
    } else if (arg == "json") {
      std::printf("%s\n", MetricsRegistry::Global().RenderJson().c_str());
    } else {
      std::printf("%s", MetricsRegistry::Global().RenderText().c_str());
    }
    return;
  }
  if (line.rfind("\\vectorize", 0) == 0) {
    std::string arg;
    std::istringstream(line.substr(10)) >> arg;
    if (arg == "on") {
      SetVectorizedExecEnabled(true);
      std::printf("vectorized execution on\n");
    } else if (arg == "off") {
      SetVectorizedExecEnabled(false);
      std::printf("vectorized execution off\n");
    } else {
      std::printf("usage: \\vectorize on|off  (currently %s)\n",
                  VectorizedExecEnabled() ? "on" : "off");
    }
    return;
  }
  if (line.rfind("\\transfer", 0) == 0) {
    std::string arg;
    std::istringstream(line.substr(9)) >> arg;
    if (arg == "on") {
      SetPredicateTransferEnabled(true);
      std::printf("predicate transfer on\n");
    } else if (arg == "off") {
      SetPredicateTransferEnabled(false);
      std::printf("predicate transfer off\n");
    } else {
      std::printf("usage: \\transfer on|off  (currently %s)\n",
                  PredicateTransferEnabled() ? "on" : "off");
    }
    return;
  }
  if (line.rfind("\\cbo", 0) == 0) {
    std::string arg;
    std::istringstream(line.substr(4)) >> arg;
    if (arg == "on") {
      SetCboEnabled(true);
      std::printf("cost-based optimizer on\n");
    } else if (arg == "off") {
      SetCboEnabled(false);
      std::printf("cost-based optimizer off\n");
    } else if (arg == "status" || arg.empty()) {
      std::printf(
          "cbo %s: plans=%llu reorders=%llu order_replays=%llu "
          "stats_builds=%llu apriori_skipped=%llu nljp_vetoed=%llu\n",
          CboEnabled() ? "on" : "off",
          (unsigned long long)ICEBERG_COUNTER("cbo.plans")->value(),
          (unsigned long long)ICEBERG_COUNTER("cbo.reorders")->value(),
          (unsigned long long)ICEBERG_COUNTER("cbo.order_replays")->value(),
          (unsigned long long)ICEBERG_COUNTER("cbo.stats_builds")->value(),
          (unsigned long long)ICEBERG_COUNTER("cbo.apriori_skipped")->value(),
          (unsigned long long)ICEBERG_COUNTER("cbo.nljp_vetoed")->value());
    } else {
      std::printf("usage: \\cbo on|off|status  (currently %s)\n",
                  CboEnabled() ? "on" : "off");
    }
    return;
  }
  if (line.rfind("\\stats", 0) == 0) {
    std::string arg;
    std::istringstream(line.substr(6)) >> arg;
    std::vector<std::string> names;
    if (!arg.empty()) {
      names.push_back(arg);
    } else {
      names = {"object", "basket", "score"};
    }
    for (const std::string& name : names) {
      Result<TablePtr> t = db->GetTable(name);
      if (!t.ok()) {
        std::printf("%s: %s\n", name.c_str(),
                    t.status().message().c_str());
        continue;
      }
      TableStatsPtr stats = GetOrBuildTableStats(**t);
      std::printf("%s (version=%llu, ~%zu stat bytes)\n%s", name.c_str(),
                  (unsigned long long)stats->version(), stats->ApproxBytes(),
                  stats->ToString((*t)->schema()).c_str());
    }
    return;
  }
  if (line.rfind("\\plancache", 0) == 0) {
    std::string arg;
    std::istringstream(line.substr(10)) >> arg;
    if (arg == "on") {
      SetPlanCacheEnabled(true);
      std::printf("plan cache on\n");
    } else if (arg == "off") {
      SetPlanCacheEnabled(false);
      // Drop resident traces and program templates so a later \plancache
      // on starts cold (deterministic A/B from the shell).
      if (g_server != nullptr) g_server->plan_cache().Clear();
      ClearProgramTemplateCache();
      std::printf("plan cache off (cleared)\n");
    } else if (arg == "status" || arg.empty()) {
      size_t entries = g_server != nullptr ? g_server->plan_cache().size() : 0;
      std::printf(
          "plan cache %s: entries=%zu hits=%llu misses=%llu rebinds=%llu "
          "invalidations=%llu evictions=%llu fallbacks=%llu\n",
          PlanCacheEnabled() ? "on" : "off", entries,
          (unsigned long long)ICEBERG_COUNTER("plan_cache.hits")->value(),
          (unsigned long long)ICEBERG_COUNTER("plan_cache.misses")->value(),
          (unsigned long long)ICEBERG_COUNTER("plan_cache.rebinds")->value(),
          (unsigned long long)
              ICEBERG_COUNTER("plan_cache.invalidations")->value(),
          (unsigned long long)
              ICEBERG_COUNTER("plan_cache.evictions")->value(),
          (unsigned long long)
              ICEBERG_COUNTER("plan_cache.replay_fallbacks")->value());
    } else {
      std::printf("usage: \\plancache on|off|status  (currently %s)\n",
                  PlanCacheEnabled() ? "on" : "off");
    }
    return;
  }
  if (line.rfind("\\trace", 0) == 0) {
    std::string arg, path;
    std::istringstream args(line.substr(6));
    args >> arg >> path;
    if (arg == "on") {
      SetTraceEnabled(true);
      std::printf("tracing on\n");
    } else if (arg == "off") {
      SetTraceEnabled(false);
      std::printf("tracing off\n");
    } else if (arg == "dump" && !path.empty()) {
      if (DumpTrace(path)) {
        std::printf("wrote %zu spans to %s\n", SnapshotTrace().size(),
                    path.c_str());
      } else {
        std::printf("cannot open %s\n", path.c_str());
      }
    } else if (arg == "clear") {
      ClearTrace();
      std::printf("trace buffer cleared\n");
    } else {
      std::printf("usage: \\trace on|off|clear|dump <file>  (currently %s, "
                  "%zu spans buffered)\n",
                  TraceEnabled() ? "on" : "off", SnapshotTrace().size());
    }
    return;
  }
  if (line.rfind("\\queries", 0) == 0) {
    std::string arg;
    std::istringstream(line.substr(8)) >> arg;
    size_t n = 20;
    if (!arg.empty()) n = static_cast<size_t>(std::strtoull(arg.c_str(),
                                                            nullptr, 10));
    std::printf("%s",
                QueryLog::RenderTable(QueryLog::Global().Tail(n)).c_str());
    return;
  }
  if (line.rfind("\\slow", 0) == 0) {
    std::string arg, value;
    std::istringstream args(line.substr(5));
    args >> arg >> value;
    if (arg == "threshold") {
      uint64_t us = value.empty()
                        ? 0
                        : std::strtoull(value.c_str(), nullptr, 10);
      SetSlowQueryThresholdUs(us);
      if (us == 0) {
        std::printf("slow-query capture disarmed\n");
      } else {
        std::printf("slow-query capture armed at %llu us\n",
                    (unsigned long long)us);
      }
      return;
    }
    size_t n = 20;
    if (!arg.empty()) n = static_cast<size_t>(std::strtoull(arg.c_str(),
                                                            nullptr, 10));
    std::vector<QueryRecord> slow = QueryLog::Global().Slow(n);
    std::printf("%s", QueryLog::RenderTable(slow).c_str());
    // The full capture payload (EXPLAIN ANALYZE tree + trace slice) of
    // the most recent captured record, so the terminal shows the detail
    // the table only flags.
    for (auto it = slow.rbegin(); it != slow.rend(); ++it) {
      if (it->slow_capture != nullptr) {
        std::printf("%s", it->slow_capture->c_str());
        break;
      }
    }
    return;
  }
  if (line.rfind("\\querylog", 0) == 0) {
    std::string arg, path;
    std::istringstream args(line.substr(9));
    args >> arg >> path;
    if (arg == "on") {
      SetQueryLogEnabled(true);
      std::printf("query log on\n");
    } else if (arg == "off") {
      SetQueryLogEnabled(false);
      std::printf("query log off\n");
    } else if (arg == "clear") {
      QueryLog::Global().Clear();
      std::printf("query log cleared\n");
    } else if (arg == "shapes") {
      std::printf("%s", QueryLog::Global().RenderShapeTable().c_str());
    } else if (arg == "slo" && !path.empty()) {
      uint64_t us = std::strtoull(path.c_str(), nullptr, 10);
      QueryLog::Global().SetDefaultSloUs(us);
      std::printf("default latency SLO %s\n",
                  us == 0 ? "cleared" : (path + " us").c_str());
    } else if (arg == "dump" && !path.empty()) {
      if (QueryLog::Global().DumpJsonl(path)) {
        std::printf("wrote %zu records to %s\n",
                    QueryLog::Global().Tail().size(), path.c_str());
      } else {
        std::printf("cannot open %s\n", path.c_str());
      }
    } else if (arg == "status" || arg.empty()) {
      std::printf(
          "query log %s: %zu/%zu records, %zu captures, slow threshold "
          "%llu us, records=%llu overwrites=%llu slo_violations=%llu\n",
          QueryLogEnabled() ? "on" : "off",
          QueryLog::Global().Tail().size(), QueryLog::Global().capacity(),
          QueryLog::Global().captures_held(),
          (unsigned long long)SlowQueryThresholdUs(),
          (unsigned long long)ICEBERG_COUNTER("query_log.records")->value(),
          (unsigned long long)
              ICEBERG_COUNTER("query_log.overwrites")->value(),
          (unsigned long long)ICEBERG_COUNTER("slo.violations")->value());
    } else {
      std::printf("usage: \\querylog on|off|clear|shapes|slo <us>|"
                  "dump <file>|status  (currently %s)\n",
                  QueryLogEnabled() ? "on" : "off");
    }
    return;
  }
  if (line.rfind("\\explain ", 0) == 0) {
    Result<std::string> plan = db->ExplainIceberg(line.substr(9));
    std::printf("%s\n", plan.ok() ? plan->c_str()
                                  : plan.status().ToString().c_str());
    return;
  }
  if (line.rfind("\\base ", 0) == 0) {
    ExecOptions exec;
    exec.governor = MakeGovernor();
    exec.num_threads = g_threads;
    Result<TablePtr> result = db->Query(line.substr(6), exec);
    if (!result.ok()) {
      std::printf("%s\n", result.status().ToString().c_str());
      return;
    }
    std::printf("%s", FormatTable(**result).c_str());
    return;
  }
  if (line.rfind("\\load ", 0) == 0) {
    std::string rest = line.substr(6);
    size_t space = rest.find(' ');
    if (space == std::string::npos) {
      std::printf("usage: \\load <table> <csv-path>\n");
      return;
    }
    Status st = LoadCsvFile(db, rest.substr(0, space), rest.substr(space + 1));
    std::printf("%s\n", st.ok() ? "loaded" : st.ToString().c_str());
    return;
  }
  if (g_governed) {
    // \govern-ed statements run directly (one explicit governor, no
    // retries) so limit trips surface verbatim.
    IcebergReport report;
    IcebergOptions options = IcebergOptions::All();
    options.governor = MakeGovernor();
    options.base_exec.num_threads = g_threads;
    Result<TablePtr> result = db->QueryIceberg(line, options, &report);
    if (!result.ok()) {
      std::printf("%s\n", result.status().ToString().c_str());
      return;
    }
    std::printf("%s", FormatTable(**result).c_str());
    for (const std::string& d : report.degradations) {
      std::printf("-- degraded: %s\n", d.c_str());
    }
    return;
  }
  ServeStatement(db, line);
}

}  // namespace

int main() {
  Database db;
  ObjectConfig objects;
  objects.num_objects = 5000;
  if (!RegisterObjects(&db, objects).ok()) return 1;
  BasketConfig baskets;
  baskets.num_baskets = 5000;
  if (!RegisterBaskets(&db, baskets).ok()) return 1;
  BaseballConfig baseball;
  baseball.num_rows = 20000;
  baseball.num_players = 1000;
  if (!RegisterBaseball(&db, baseball).ok()) return 1;

  std::printf(
      "Smart-Iceberg shell. Demo tables: object(id,x,y), basket(bid,item), "
      "score(pid,year,round,teamid,hits,hruns,h2,sb).\n"
      "Commands: \\explain <sql>, \\base <sql>, \\govern [ms] [kb], "
      "\\threads [N], \\sessions [N], \\retry [N], \\chaos seed N|off, "
      "\\tables, \\load <table> <csv>, \\metrics [json|reset], "
      "\\trace on|off|clear|dump <file>, \\vectorize on|off, "
      "\\transfer on|off, \\cbo on|off|status, \\stats [table], "
      "\\plancache on|off|status, \\queries [n], "
      "\\slow [n | threshold <us>], "
      "\\querylog on|off|clear|shapes|slo <us>|dump <file>|status, \\q\n"
      "EXPLAIN ANALYZE <sql> prints the annotated plan tree.\n");
  std::string line;
  while (true) {
    std::printf("iceberg> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\q") break;
    if (line == "\\tables") {
      for (const char* name : {"object", "basket", "score"}) {
        TablePtr t = *db.GetTable(name);
        std::printf("%s %s rows=%zu\n", name, t->schema().ToString().c_str(),
                    t->num_rows());
      }
      continue;
    }
    RunStatement(&db, line);
  }
  return 0;
}
