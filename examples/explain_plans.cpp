// Prints the physical plans of every engine for the paper's query
// templates: the baseline indexed-nested-loop + hash-aggregate plans of
// Appendix E, and the NLJP component queries of Listings 7 and 10.

#include <cstdio>

#include "src/engine/database.h"
#include "src/workload/baseball.h"
#include "src/workload/object.h"

int main() {
  using namespace iceberg;

  Database db;
  ObjectConfig object_config;
  object_config.num_objects = 1000;
  if (!RegisterObjects(&db, object_config).ok()) return 1;
  BaseballConfig config;
  config.num_rows = 5000;
  config.num_players = 300;
  if (!RegisterProduct(&db, config, /*max_base_rows=*/1000).ok()) return 1;

  const char* skyband =
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
      "GROUP BY L.id HAVING COUNT(*) <= 50";
  const char* complex =
      "SELECT S1.id, S1.attr, S2.attr, COUNT(*) "
      "FROM product S1, product S2, product T1, product T2 "
      "WHERE S1.id = S2.id AND T1.id = T2.id "
      "  AND S1.category = T1.category "
      "  AND T1.attr = S1.attr AND T2.attr = S2.attr "
      "  AND T1.val > S1.val AND T2.val > S2.val "
      "GROUP BY S1.id, S1.attr, S2.attr HAVING COUNT(*) >= 10";

  std::printf("=== skyband (Listing 2) ===\n\n");
  std::printf("-- baseline PostgreSQL-style plan (Appendix E):\n%s\n",
              db.ExplainBaseline(skyband)->c_str());
  std::printf("-- Vendor A-style plan (parallel):\n%s\n",
              db.ExplainBaseline(skyband, ExecOptions::VendorA())->c_str());
  std::printf("-- Smart-Iceberg NLJP (Listing 7):\n%s\n",
              db.ExplainIceberg(skyband)->c_str());

  std::printf("=== complex / unexciting products (Listing 3) ===\n\n");
  std::printf("-- baseline plan:\n%s\n", db.ExplainBaseline(complex)->c_str());
  std::printf("-- Smart-Iceberg plan (Listings 10/11 + Example 13):\n%s\n",
              db.ExplainIceberg(complex)->c_str());
  return 0;
}
