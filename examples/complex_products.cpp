// The "unexciting products" query (paper, Listing 3): over the unpivoted
// product(id, category, attr, val) table, find products strictly dominated
// by at least 10 same-category products on a pair of attributes — a
// four-way self-join. Smart-Iceberg applies BOTH generalized a-priori
// reducers (Example 13's Q_S1/Q_S2) and an NLJP with pruning/memoization,
// a combination the paper's own prototype could not yet apply together.

#include <chrono>
#include <cstdio>

#include "src/engine/database.h"
#include "src/workload/baseball.h"

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace iceberg;

  Database db;
  BaseballConfig config;
  config.num_rows = 30000;
  config.num_players = 600;
  Status st = RegisterProduct(&db, config, /*max_base_rows=*/2500);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  const char* sql =
      "SELECT S1.id, S1.attr, S2.attr, COUNT(*) "
      "FROM product S1, product S2, product T1, product T2 "
      "WHERE S1.id = S2.id AND T1.id = T2.id "
      "  AND S1.category = T1.category "
      "  AND T1.attr = S1.attr AND T2.attr = S2.attr "
      "  AND T1.val > S1.val AND T2.val > S2.val "
      "GROUP BY S1.id, S1.attr, S2.attr "
      "HAVING COUNT(*) >= 60";

  TablePtr product = *db.GetTable("product");
  std::printf("complex query over %zu product rows (four-way self-join)\n\n",
              product->num_rows());

  Result<std::string> plan = db.ExplainIceberg(sql);
  if (plan.ok()) std::printf("Smart-Iceberg plan:\n%s\n", plan->c_str());

  auto t0 = std::chrono::steady_clock::now();
  Result<TablePtr> base = db.Query(sql);
  double base_s = Seconds(t0);
  if (!base.ok()) {
    std::fprintf(stderr, "baseline failed: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }

  IcebergReport report;
  t0 = std::chrono::steady_clock::now();
  Result<TablePtr> smart =
      db.QueryIceberg(sql, IcebergOptions::All(), &report);
  double smart_s = Seconds(t0);
  if (!smart.ok()) {
    std::fprintf(stderr, "smart failed: %s\n",
                 smart.status().ToString().c_str());
    return 1;
  }

  std::printf("baseline:      %7.3f s, %zu rows\n", base_s,
              (*base)->num_rows());
  std::printf("smart-iceberg: %7.3f s, %zu rows (%.1fx)\n", smart_s,
              (*smart)->num_rows(), base_s / smart_s);
  std::printf("NLJP stats: %s\n", report.nljp_stats.ToString().c_str());
  return (*base)->num_rows() == (*smart)->num_rows() ? 0 : 2;
}
