// Tests for the NLJP operator (Sections 5-7): applicability conditions,
// Theorem 3 pruning safety, memoization behaviour, and result equivalence
// against the baseline executor under every option combination.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/engine/database.h"
#include "src/nljp/nljp.h"
#include "src/workload/object.h"

namespace iceberg {
namespace {

void ExpectSame(const TablePtr& a, const TablePtr& b,
                const std::string& context = "") {
  ASSERT_EQ(a->num_rows(), b->num_rows()) << context;
  std::vector<Row> ra = a->rows(), rb = b->rows();
  std::sort(ra.begin(), ra.end(), RowLess());
  std::sort(rb.begin(), rb.end(), RowLess());
  for (size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(CompareRows(ra[i], rb[i]), 0)
        << context << ": " << RowToString(ra[i]) << " vs "
        << RowToString(rb[i]);
  }
}

constexpr char kSkyband[] =
    "SELECT L.id, COUNT(*) FROM object L, object R "
    "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
    "GROUP BY L.id HAVING COUNT(*) <= 15";

std::unique_ptr<Database> MakeObjectDb(size_t n, int64_t domain,
                                       PointDistribution dist =
                                           PointDistribution::kIndependent) {
  auto db = std::make_unique<Database>();
  ObjectConfig cfg;
  cfg.num_objects = n;
  cfg.domain = domain;
  cfg.distribution = dist;
  EXPECT_TRUE(RegisterObjects(db.get(), cfg).ok());
  return db;
}

Result<std::unique_ptr<NljpOperator>> MakeSkybandNljp(Database* db,
                                                      QueryBlock* block,
                                                      NljpOptions options) {
  ICEBERG_ASSIGN_OR_RETURN(*block, db->Prepare(kSkyband));
  TablePartition part;
  part.left = {0};
  part.right = {1};
  ICEBERG_ASSIGN_OR_RETURN(IcebergView view, AnalyzeIceberg(*block, part));
  return NljpOperator::Create(std::move(view), options);
}

TEST(Nljp, SkybandAppliesPruneAndMemo) {
  auto db = MakeObjectDb(300, 40);
  QueryBlock block;
  auto op = MakeSkybandNljp(db.get(), &block, NljpOptions());
  ASSERT_TRUE(op.ok()) << op.status().ToString();
  EXPECT_TRUE((*op)->prune_enabled());
  EXPECT_TRUE((*op)->memo_enabled());
  EXPECT_EQ((*op)->monotonicity(), Monotonicity::kAntiMonotone);
  // Derived predicate of Example 11/12 (componentwise <=).
  std::vector<size_t> eq = (*op)->subsumption().EqualityPositions();
  EXPECT_TRUE(eq.empty());
}

TEST(Nljp, MatchesBaselineAndCountsWork) {
  auto db = MakeObjectDb(400, 60);
  auto base = db->Query(kSkyband);
  ASSERT_TRUE(base.ok());
  QueryBlock block;
  auto op = MakeSkybandNljp(db.get(), &block, NljpOptions());
  ASSERT_TRUE(op.ok());
  NljpStats stats;
  auto result = (*op)->Execute(&stats);
  ASSERT_TRUE(result.ok());
  ExpectSame(*base, *result);
  EXPECT_EQ(stats.bindings_total, 400u);
  EXPECT_EQ(stats.bindings_total,
            stats.memo_hits + stats.pruned + stats.inner_evaluations);
  EXPECT_GT(stats.pruned, 0u);
  EXPECT_GT(stats.cache_entries, 0u);
}

TEST(Nljp, PruneOnlyAndMemoOnlyBothCorrect) {
  auto db = MakeObjectDb(350, 25);  // small domain: many duplicate bindings
  auto base = db->Query(kSkyband);
  ASSERT_TRUE(base.ok());
  {
    NljpOptions opts;
    opts.enable_memo = false;
    QueryBlock block;
    auto op = MakeSkybandNljp(db.get(), &block, opts);
    ASSERT_TRUE(op.ok());
    NljpStats stats;
    auto result = (*op)->Execute(&stats);
    ASSERT_TRUE(result.ok());
    ExpectSame(*base, *result, "prune only");
    EXPECT_EQ(stats.memo_hits, 0u);
    EXPECT_GT(stats.pruned, 0u);
  }
  {
    NljpOptions opts;
    opts.enable_prune = false;
    QueryBlock block;
    auto op = MakeSkybandNljp(db.get(), &block, opts);
    ASSERT_TRUE(op.ok());
    NljpStats stats;
    auto result = (*op)->Execute(&stats);
    ASSERT_TRUE(result.ok());
    ExpectSame(*base, *result, "memo only");
    EXPECT_EQ(stats.pruned, 0u);
    EXPECT_GT(stats.memo_hits, 0u);  // duplicates exist at domain 25
  }
}

TEST(Nljp, CacheIndexOffStillCorrect) {
  auto db = MakeObjectDb(300, 25);
  auto base = db->Query(kSkyband);
  ASSERT_TRUE(base.ok());
  NljpOptions opts;
  opts.cache_index = false;  // linear-scan memo lookups (Fig. 4 PK+BT)
  QueryBlock block;
  auto op = MakeSkybandNljp(db.get(), &block, opts);
  ASSERT_TRUE(op.ok());
  auto result = (*op)->Execute(nullptr);
  ASSERT_TRUE(result.ok());
  ExpectSame(*base, *result);
}

TEST(Nljp, BindingOrderDoesNotChangeResults) {
  auto db = MakeObjectDb(300, 50);
  auto base = db->Query(kSkyband);
  ASSERT_TRUE(base.ok());
  for (BindingOrder order : {BindingOrder::kNatural, BindingOrder::kSortedAsc,
                             BindingOrder::kSortedDesc}) {
    NljpOptions opts;
    opts.binding_order = order;
    QueryBlock block;
    auto op = MakeSkybandNljp(db.get(), &block, opts);
    ASSERT_TRUE(op.ok());
    NljpStats stats;
    auto result = (*op)->Execute(&stats);
    ASSERT_TRUE(result.ok());
    ExpectSame(*base, *result, "order variant");
  }
}

TEST(Nljp, SortedDescBindingOrderPrunesMoreOnAntiMonotone) {
  // For COUNT(*) <= k with dominance joins, starting from maximal bindings
  // discovers unpromising regions early: sorted-desc should prune at least
  // as much as sorted-asc on this workload.
  auto db = MakeObjectDb(500, 200, PointDistribution::kIndependent);
  NljpStats asc_stats, desc_stats;
  {
    NljpOptions opts;
    opts.binding_order = BindingOrder::kSortedAsc;
    QueryBlock block;
    auto op = MakeSkybandNljp(db.get(), &block, opts);
    ASSERT_TRUE(op.ok());
    ASSERT_TRUE((*op)->Execute(&asc_stats).ok());
  }
  {
    NljpOptions opts;
    opts.binding_order = BindingOrder::kSortedDesc;
    QueryBlock block;
    auto op = MakeSkybandNljp(db.get(), &block, opts);
    ASSERT_TRUE(op.ok());
    ASSERT_TRUE((*op)->Execute(&desc_stats).ok());
  }
  EXPECT_GE(desc_stats.pruned, asc_stats.pruned);
}

TEST(Nljp, RequiresHavingApplicableToInner) {
  auto db = MakeObjectDb(50, 10);
  auto block = db->Prepare(
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x GROUP BY L.id HAVING MAX(L.y) <= 5");
  ASSERT_TRUE(block.ok());
  TablePartition part;
  part.left = {0};
  part.right = {1};
  auto view = AnalyzeIceberg(*block, part);
  ASSERT_TRUE(view.ok());
  auto op = NljpOperator::Create(std::move(*view), NljpOptions());
  EXPECT_FALSE(op.ok());
}

TEST(Nljp, RequiresJoinCondition) {
  auto db = MakeObjectDb(50, 10);
  auto block = db->Prepare(
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "GROUP BY L.id HAVING COUNT(*) <= 5");
  ASSERT_TRUE(block.ok());
  TablePartition part;
  part.left = {0};
  part.right = {1};
  auto view = AnalyzeIceberg(*block, part);
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(NljpOperator::Create(std::move(*view), NljpOptions()).ok());
}

TEST(Nljp, MemoDisabledWhenBindingsUnique) {
  // J_L = {id, x}: id is a key, so J_L -> A_L and memoization is skipped
  // as non-beneficial (Section 6) — unless forced.
  auto db = MakeObjectDb(60, 10);
  auto block = db->Prepare(
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.id <> R.id AND L.x <= R.x GROUP BY L.id "
      "HAVING COUNT(*) <= 5");
  ASSERT_TRUE(block.ok());
  TablePartition part;
  part.left = {0};
  part.right = {1};
  {
    auto view = AnalyzeIceberg(*block, part);
    ASSERT_TRUE(view.ok());
    auto op = NljpOperator::Create(std::move(*view), NljpOptions());
    ASSERT_TRUE(op.ok()) << op.status().ToString();
    EXPECT_FALSE((*op)->memo_enabled());
  }
  {
    NljpOptions opts;
    opts.force_memo = true;
    auto view = AnalyzeIceberg(*block, part);
    ASSERT_TRUE(view.ok());
    auto op = NljpOperator::Create(std::move(*view), opts);
    ASSERT_TRUE(op.ok());
    EXPECT_TRUE((*op)->memo_enabled());
  }
}

TEST(Nljp, PruneDisabledWhenGlNotSuperkey) {
  // Group by x (not a key): Theorem 3's premise fails; pruning must be off
  // but memoization still works and results stay correct.
  auto db = MakeObjectDb(200, 20);
  const char* sql =
      "SELECT L.x, COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x AND L.y <= R.y GROUP BY L.x "
      "HAVING COUNT(*) >= 30";
  auto block = db->Prepare(sql);
  ASSERT_TRUE(block.ok());
  TablePartition part;
  part.left = {0};
  part.right = {1};
  auto view = AnalyzeIceberg(*block, part);
  ASSERT_TRUE(view.ok());
  auto op = NljpOperator::Create(std::move(*view), NljpOptions());
  ASSERT_TRUE(op.ok()) << op.status().ToString();
  EXPECT_FALSE((*op)->prune_enabled());
  EXPECT_TRUE((*op)->memo_enabled());
  auto base = db->Query(sql);
  ASSERT_TRUE(base.ok());
  auto result = (*op)->Execute(nullptr);
  ASSERT_TRUE(result.ok());
  ExpectSame(*base, *result, "memo with multi-tuple groups");
}

TEST(Nljp, AntiMonotonePruneNeedsEmptyGr) {
  // G_R non-empty with anti-monotone HAVING: Theorem 3 forbids pruning.
  auto db = MakeObjectDb(100, 15);
  auto block = db->Prepare(
      "SELECT L.id, R.x, COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x GROUP BY L.id, R.x HAVING COUNT(*) <= 5");
  ASSERT_TRUE(block.ok());
  TablePartition part;
  part.left = {0};
  part.right = {1};
  auto view = AnalyzeIceberg(*block, part);
  ASSERT_TRUE(view.ok());
  auto op = NljpOperator::Create(std::move(*view), NljpOptions());
  ASSERT_TRUE(op.ok()) << op.status().ToString();
  EXPECT_FALSE((*op)->prune_enabled());
}

TEST(Nljp, MonotonePruneAllowsNonEmptyGr) {
  auto db = MakeObjectDb(150, 15);
  const char* sql =
      "SELECT L.id, R.x, COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x AND L.y <= R.y GROUP BY L.id, R.x "
      "HAVING COUNT(*) >= 4";
  auto block = db->Prepare(sql);
  ASSERT_TRUE(block.ok());
  TablePartition part;
  part.left = {0};
  part.right = {1};
  auto view = AnalyzeIceberg(*block, part);
  ASSERT_TRUE(view.ok());
  auto op = NljpOperator::Create(std::move(*view), NljpOptions());
  ASSERT_TRUE(op.ok()) << op.status().ToString();
  EXPECT_TRUE((*op)->prune_enabled());
  auto base = db->Query(sql);
  ASSERT_TRUE(base.ok());
  auto result = (*op)->Execute(nullptr);
  ASSERT_TRUE(result.ok());
  ExpectSame(*base, *result, "monotone prune with G_R");
}

TEST(Nljp, GroupByRsideOnlyAggregates) {
  // Aggregates over R attributes (SUM/MIN) exercise the payload machinery
  // beyond COUNT.
  auto db = MakeObjectDb(200, 25);
  const char* sql =
      "SELECT L.id, SUM(R.x), MIN(R.y), COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
      "GROUP BY L.id HAVING COUNT(*) <= 20";
  auto base = db->Query(sql);
  ASSERT_TRUE(base.ok());
  auto block = db->Prepare(sql);
  ASSERT_TRUE(block.ok());
  TablePartition part;
  part.left = {0};
  part.right = {1};
  auto view = AnalyzeIceberg(*block, part);
  ASSERT_TRUE(view.ok());
  auto op = NljpOperator::Create(std::move(*view), NljpOptions());
  ASSERT_TRUE(op.ok()) << op.status().ToString();
  auto result = (*op)->Execute(nullptr);
  ASSERT_TRUE(result.ok());
  ExpectSame(*base, *result, "R-side aggregates");
}

TEST(Nljp, CountDistinctRequiresKeyGrouping) {
  // COUNT(DISTINCT R.x) is holistic: allowed when G_L -> A_L...
  auto db = MakeObjectDb(150, 20);
  const char* sql =
      "SELECT L.id, COUNT(DISTINCT R.x) FROM object L, object R "
      "WHERE L.x <= R.x GROUP BY L.id HAVING COUNT(DISTINCT R.x) <= 8";
  auto base = db->Query(sql);
  ASSERT_TRUE(base.ok());
  auto block = db->Prepare(sql);
  TablePartition part;
  part.left = {0};
  part.right = {1};
  auto view = AnalyzeIceberg(*block, part);
  auto op = NljpOperator::Create(std::move(*view), NljpOptions());
  ASSERT_TRUE(op.ok()) << op.status().ToString();
  auto result = (*op)->Execute(nullptr);
  ASSERT_TRUE(result.ok());
  ExpectSame(*base, *result, "count distinct key mode");

  // ...but rejected when groups can combine multiple bindings.
  const char* nonkey_sql =
      "SELECT L.x, COUNT(DISTINCT R.x) FROM object L, object R "
      "WHERE L.y <= R.y GROUP BY L.x HAVING COUNT(DISTINCT R.x) <= 8";
  auto nonkey_block = db->Prepare(nonkey_sql);
  ASSERT_TRUE(nonkey_block.ok());
  auto nonkey_view = AnalyzeIceberg(*nonkey_block, part);
  ASSERT_TRUE(nonkey_view.ok());
  EXPECT_FALSE(
      NljpOperator::Create(std::move(*nonkey_view), NljpOptions()).ok());
}

TEST(Nljp, ExplainListsComponentQueries) {
  auto db = MakeObjectDb(50, 10);
  QueryBlock block;
  auto op = MakeSkybandNljp(db.get(), &block, NljpOptions());
  ASSERT_TRUE(op.ok());
  std::string explain = (*op)->Explain();
  EXPECT_NE(explain.find("Q_B"), std::string::npos);
  EXPECT_NE(explain.find("Q_R(b)"), std::string::npos);
  EXPECT_NE(explain.find("Q_C(b')"), std::string::npos);
  EXPECT_NE(explain.find("Q_P"), std::string::npos);
  EXPECT_NE(explain.find("w.0 - w'.0 <= 0"), std::string::npos) << explain;
}

/// Property: across distributions, domains, and thresholds, NLJP equals the
/// baseline (the paper's correctness claim for Theorem 3 + memoization).
struct SweepCase {
  PointDistribution dist;
  int64_t domain;
  int threshold;
  bool monotone;  // use COUNT >= threshold instead of <=
};

class NljpSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(NljpSweep, EquivalentToBaseline) {
  const SweepCase& c = GetParam();
  auto db = MakeObjectDb(250, c.domain, c.dist);
  std::string sql =
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
      "GROUP BY L.id HAVING COUNT(*) " +
      std::string(c.monotone ? ">= " : "<= ") + std::to_string(c.threshold);
  auto base = db->Query(sql);
  ASSERT_TRUE(base.ok());
  auto smart = db->QueryIceberg(sql);
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  ExpectSame(*base, *smart, sql);
}

INSTANTIATE_TEST_SUITE_P(
    DistributionsAndThresholds, NljpSweep,
    ::testing::Values(
        SweepCase{PointDistribution::kIndependent, 40, 0, false},
        SweepCase{PointDistribution::kIndependent, 40, 5, false},
        SweepCase{PointDistribution::kIndependent, 40, 50, false},
        SweepCase{PointDistribution::kIndependent, 40, 240, false},
        SweepCase{PointDistribution::kCorrelated, 40, 10, false},
        SweepCase{PointDistribution::kAnticorrelated, 40, 10, false},
        SweepCase{PointDistribution::kIndependent, 8, 10, false},
        SweepCase{PointDistribution::kCorrelated, 8, 10, false},
        SweepCase{PointDistribution::kIndependent, 40, 10, true},
        SweepCase{PointDistribution::kAnticorrelated, 40, 40, true},
        SweepCase{PointDistribution::kIndependent, 8, 100, true},
        SweepCase{PointDistribution::kCorrelated, 200, 3, true}));

}  // namespace
}  // namespace iceberg
