// Unit tests for src/common: Status/Result, Value semantics, Row utilities.

#include <gtest/gtest.h>

#include <unordered_set>

#include "src/common/status.h"
#include "src/common/string_util.h"
#include "src/common/value.h"

namespace iceberg {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(Status, AllConstructorsSetCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::BindError("x").code(), StatusCode::kBindError);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(Status, GovernancePredicates) {
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_FALSE(Status::Cancelled("x").IsResourceExhausted());
  EXPECT_FALSE(Status::OK().IsCancelled());
  EXPECT_EQ(Status::Cancelled("t").ToString(), "Cancelled: t");
  EXPECT_EQ(Status::ResourceExhausted("t").ToString(),
            "ResourceExhausted: t");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  ICEBERG_ASSIGN_OR_RETURN(int h, Half(x));
  ICEBERG_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(Result, ValueOrReturnsValueOrFallback) {
  Result<int> good = 42;
  EXPECT_EQ(good.value_or(-1), 42);
  Result<int> bad = Status::NotFound("gone");
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_EQ(Half(7).value_or(0), 0);  // rvalue overload
  EXPECT_EQ(Half(8).value_or(0), 4);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  // Accessing the value of an error result must abort loudly with the
  // carried status, not silently read an empty optional.
  Result<int> bad = Status::NotFound("gone");
  EXPECT_DEATH({ (void)bad.value(); }, "gone");
  EXPECT_DEATH({ (void)*bad; }, "NotFound");
  Result<std::string> bad_str = Status::Internal("broken");
  EXPECT_DEATH({ (void)bad_str->size(); }, "broken");
}

TEST(Value, NullProperties) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_numeric());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_FALSE(v.AsBool());
}

TEST(Value, IntDoubleCoercedComparison) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Double(4.0).Compare(Value::Int(3)), 0);
}

TEST(Value, NullsSortFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_LT(Value::Null().Compare(Value::Str("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(Value, NumericsSortBeforeStrings) {
  EXPECT_LT(Value::Int(999).Compare(Value::Str("0")), 0);
}

TEST(Value, StringComparison) {
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  EXPECT_EQ(Value::Str("x").Compare(Value::Str("x")), 0);
}

TEST(Value, BoolRepresentation) {
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_FALSE(Value::Bool(false).AsBool());
  EXPECT_TRUE(Value::Bool(true).is_int());
}

TEST(Value, StringTruthiness) {
  // Regression: AsBool() on a string used to fall through to AsDouble(),
  // which throws bad_variant_access on the string alternative. Strings are
  // truthy when non-empty.
  EXPECT_TRUE(Value::Str("x").AsBool());
  EXPECT_TRUE(Value::Str("0").AsBool());  // non-empty, even if it reads 0
  EXPECT_FALSE(Value::Str("").AsBool());
  EXPECT_FALSE(Value::Null().AsBool());
  EXPECT_TRUE(Value::Double(0.5).AsBool());
  EXPECT_FALSE(Value::Double(0.0).AsBool());
}

TEST(Value, HashConsistentWithEquality) {
  // 1 and 1.0 compare equal, so they must hash equal.
  EXPECT_EQ(Value::Int(1).Hash(), Value::Double(1.0).Hash());
  EXPECT_EQ(Value::Str("hi").Hash(), Value::Str("hi").Hash());
}

TEST(Value, OperatorsMatchCompare) {
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
  EXPECT_TRUE(Value::Int(2) >= Value::Int(2));
  EXPECT_TRUE(Value::Int(2) == Value::Double(2.0));
  EXPECT_TRUE(Value::Int(2) != Value::Int(3));
}

TEST(Row, CompareRowsLexicographic) {
  Row a{Value::Int(1), Value::Int(2)};
  Row b{Value::Int(1), Value::Int(3)};
  EXPECT_LT(CompareRows(a, b), 0);
  EXPECT_GT(CompareRows(b, a), 0);
  EXPECT_EQ(CompareRows(a, a), 0);
}

TEST(Row, PrefixSortsFirst) {
  Row a{Value::Int(1)};
  Row b{Value::Int(1), Value::Int(0)};
  EXPECT_LT(CompareRows(a, b), 0);
}

TEST(Row, HashEqWorkInUnorderedSet) {
  std::unordered_set<Row, RowHash, RowEq> set;
  set.insert({Value::Int(1), Value::Str("a")});
  set.insert({Value::Int(1), Value::Str("a")});
  set.insert({Value::Int(2), Value::Str("a")});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Row, ToStringFormat) {
  Row r{Value::Int(1), Value::Double(2.5), Value::Str("x")};
  EXPECT_EQ(RowToString(r), "(1, 2.5, 'x')");
}

TEST(StringUtil, ToLowerUpper) {
  EXPECT_EQ(ToLower("AbC_1"), "abc_1");
  EXPECT_EQ(ToUpper("AbC_1"), "ABC_1");
}

TEST(StringUtil, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selects"));
}

TEST(StringUtil, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

}  // namespace
}  // namespace iceberg
