#ifndef SMARTICEBERG_TESTS_JSON_CHECK_H_
#define SMARTICEBERG_TESTS_JSON_CHECK_H_

// Minimal JSON validity checker for tests. The repo deliberately has no
// JSON dependency, so exporters build JSON by hand; these helpers let
// tests assert the output actually parses instead of just grepping for
// substrings. Recursive descent over the full grammar (objects, arrays,
// strings with escapes, numbers, literals); no DOM is built.

#include <cctype>
#include <cstddef>
#include <string>

namespace iceberg {
namespace testing {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  /// True iff the whole input is exactly one valid JSON value.
  bool Valid() {
    pos_ = 0;
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Literal(const char* lit) {
    size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool String() {
    if (!Consume('"')) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_];
        if (e == 'u') {
          if (pos_ + 4 >= text_.size()) return false;
          for (int i = 1; i <= 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 5;
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
            e != 'n' && e != 'r' && e != 't') {
          return false;
        }
        ++pos_;
        continue;
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      pos_ = start;
      return false;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return false;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return true;
  }

  bool Value() {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }

  bool Object() {
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      if (!Consume(':')) return false;
      if (!Value()) return false;
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool Array() {
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    while (true) {
      if (!Value()) return false;
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

inline bool IsValidJson(const std::string& text) {
  return JsonChecker(text).Valid();
}

}  // namespace testing
}  // namespace iceberg

#endif  // SMARTICEBERG_TESTS_JSON_CHECK_H_
