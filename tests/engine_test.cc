// Tests for the Database facade: catalog operations, SQL entry points,
// CTE/subquery materialization, derived FDs, and error paths.

#include <gtest/gtest.h>

#include "src/engine/database.h"

namespace iceberg {
namespace {

TEST(Database, CreateInsertQuery) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", Schema({{"a", DataType::kInt64},
                                          {"b", DataType::kString}}))
                  .ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(1), Value::Str("x")}).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(2), Value::Str("y")}).ok());
  auto r = db.Query("SELECT a FROM t WHERE b = 'y'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->num_rows(), 1u);
  EXPECT_EQ((*r)->row(0)[0].AsInt(), 2);
}

TEST(Database, DuplicateTableRejected) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", Schema({{"a", DataType::kInt64}})).ok());
  EXPECT_FALSE(db.CreateTable("T", Schema({{"a", DataType::kInt64}})).ok());
}

TEST(Database, UnknownTableErrors) {
  Database db;
  EXPECT_FALSE(db.Insert("nope", {}).ok());
  EXPECT_FALSE(db.GetTable("nope").ok());
  EXPECT_FALSE(db.DeclareKey("nope", {"a"}).ok());
  EXPECT_FALSE(db.Query("SELECT a FROM nope").ok());
}

TEST(Database, InsertArityChecked) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", Schema({{"a", DataType::kInt64}})).ok());
  EXPECT_FALSE(db.Insert("t", {Value::Int(1), Value::Int(2)}).ok());
}

TEST(Database, ParseErrorsSurface) {
  Database db;
  auto r = db.Query("SELEKT nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(Database, CteVisibleToMainAndLaterCtes) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", Schema({{"a", DataType::kInt64}})).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.Insert("t", {Value::Int(i)}).ok());
  }
  auto r = db.Query(
      "WITH small AS (SELECT a FROM t WHERE a < 5), "
      "     tiny AS (SELECT a FROM small WHERE a < 2) "
      "SELECT s.a, y.a FROM small s, tiny y WHERE s.a = y.a");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 2u);
}

TEST(Database, SubqueryInFromMaterialized) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", Schema({{"a", DataType::kInt64}})).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(db.Insert("t", {Value::Int(i % 3)}).ok());
  }
  auto r = db.Query(
      "SELECT s.a, s.n FROM "
      "(SELECT a, COUNT(*) AS n FROM t GROUP BY a) s WHERE s.n >= 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 3u);
}

TEST(Database, DerivedFdFromGroupedCteEnablesPruning) {
  // A CTE grouped by (k) exports k -> all, which the optimizer needs for
  // Theorem 3's G_L superkey check on the outer block.
  Database db;
  ASSERT_TRUE(db.CreateTable("t", Schema({{"k", DataType::kInt64},
                                          {"v", DataType::kInt64}}))
                  .ok());
  uint64_t state = 99;
  for (int i = 0; i < 400; ++i) {
    state = state * 6364136223846793005ULL + 1;
    ASSERT_TRUE(db.Insert("t", {Value::Int(i % 80),
                                Value::Int(static_cast<int64_t>(
                                    (state >> 33) % 50))})
                    .ok());
  }
  const char* sql =
      "WITH agg AS (SELECT k, SUM(v) AS s FROM t GROUP BY k "
      "             HAVING COUNT(*) >= 2) "
      "SELECT L.k, COUNT(*) FROM agg L, agg R WHERE L.s < R.s "
      "GROUP BY L.k HAVING COUNT(*) <= 10";
  IcebergReport report;
  auto smart = db.QueryIceberg(sql, IcebergOptions::All(), &report);
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  EXPECT_TRUE(report.used_nljp) << report.ToString();
  EXPECT_NE(report.nljp_explain.find("Q_C"), std::string::npos)
      << report.nljp_explain;  // pruning really on
  auto base = db.Query(sql);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ((*base)->num_rows(), (*smart)->num_rows());
}

TEST(Database, ExplainBaselineAndIceberg) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", Schema({{"a", DataType::kInt64}})).ok());
  auto base_plan = db.ExplainBaseline("SELECT a FROM t");
  ASSERT_TRUE(base_plan.ok());
  EXPECT_NE(base_plan->find("SeqScan"), std::string::npos);
  auto smart_plan = db.ExplainIceberg("SELECT a FROM t");
  ASSERT_TRUE(smart_plan.ok());
}

TEST(Database, DropIndexesAffectsPlans) {
  Database db;
  ASSERT_TRUE(db.CreateTable("a", Schema({{"k", DataType::kInt64}})).ok());
  ASSERT_TRUE(db.CreateTable("b", Schema({{"k", DataType::kInt64}})).ok());
  ASSERT_TRUE(db.CreateHashIndex("b", {"k"}).ok());
  const char* sql = "SELECT a.k FROM a, b WHERE a.k = b.k";
  EXPECT_NE(db.ExplainBaseline(sql)->find("IndexNLJoin(hash)"),
            std::string::npos);
  ASSERT_TRUE(db.DropIndexes("b").ok());
  EXPECT_EQ(db.ExplainBaseline(sql)->find("IndexNLJoin(hash)"),
            std::string::npos);
}

TEST(Database, RegisterTableSharesStorage) {
  Database db;
  auto table = std::make_shared<Table>(
      "ext", Schema({{"a", DataType::kInt64}}));
  table->AppendUnchecked({Value::Int(5)});
  ASSERT_TRUE(db.RegisterTable(table).ok());
  auto fetched = db.GetTable("ext");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->get(), table.get());
}

TEST(Database, QueryIcebergOnPlainAggregate) {
  // Single-table iceberg query (the Fang et al. original): no join, so the
  // optimizer must fall back gracefully.
  Database db;
  ASSERT_TRUE(db.CreateTable("li", Schema({{"part", DataType::kInt64},
                                           {"rev", DataType::kInt64}}))
                  .ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        db.Insert("li", {Value::Int(i % 5), Value::Int(100 * i)}).ok());
  }
  const char* sql =
      "SELECT part, SUM(rev) FROM li GROUP BY part "
      "HAVING SUM(rev) >= 20000";
  auto base = db.Query(sql);
  auto smart = db.QueryIceberg(sql);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  EXPECT_EQ((*base)->num_rows(), (*smart)->num_rows());
}

}  // namespace
}  // namespace iceberg
