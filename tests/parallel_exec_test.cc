// Morsel-driven parallel execution tests: TaskPool scheduling invariants,
// serial-vs-parallel result equality on the full workload for both
// engines, shared-cache bounds under concurrency, and governor trips
// (cancellation / budget exhaustion) injected while several workers run.
// Labeled `tsan` in tests/CMakeLists.txt: this binary plus governor_test
// form the ThreadSanitizer job.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "bench/workload_queries.h"
#include "src/engine/database.h"
#include "src/exec/task_pool.h"
#include "src/workload/object.h"

namespace iceberg {
namespace {

// ---------------------------------------------------------------------------
// TaskPool scheduling
// ---------------------------------------------------------------------------

TEST(TaskPoolTest, CoversRangeExactlyOnce) {
  TaskPool pool(4);
  constexpr size_t kTotal = 1000;
  std::vector<std::atomic<int>> hits(kTotal);
  Status st = pool.RunMorsels(
      kTotal, 7, [&](int worker, size_t begin, size_t end) -> Status {
        EXPECT_GE(worker, 0);
        EXPECT_LT(worker, 4);
        EXPECT_LT(begin, end);
        EXPECT_LE(end, kTotal);
        for (size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
        return Status::OK();
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskPoolTest, SingleThreadRunsInlineOnCaller) {
  TaskPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  size_t covered = 0;
  Status st = pool.RunMorsels(
      100, 8, [&](int worker, size_t begin, size_t end) -> Status {
        EXPECT_EQ(worker, 0);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        covered += end - begin;
        return Status::OK();
      });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(covered, 100u);
}

TEST(TaskPoolTest, FirstErrorStopsTheJobAndIsReturned) {
  TaskPool pool(4);
  Status st = pool.RunMorsels(
      10000, 16, [&](int, size_t begin, size_t end) -> Status {
        if (begin <= 123 && 123 < end) {
          return Status::InvalidArgument("injected failure");
        }
        return Status::OK();
      });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
}

TEST(TaskPoolTest, PoolIsReusableAcrossJobsAndAfterFailure) {
  TaskPool pool(3);
  std::atomic<size_t> covered{0};
  auto count = [&](int, size_t begin, size_t end) -> Status {
    covered.fetch_add(end - begin);
    return Status::OK();
  };
  ASSERT_TRUE(pool.RunMorsels(500, 13, count).ok());
  EXPECT_EQ(covered.load(), 500u);
  ASSERT_FALSE(pool.RunMorsels(500, 13, [](int, size_t, size_t) {
                     return Status::Internal("boom");
                   }).ok());
  covered = 0;
  ASSERT_TRUE(pool.RunMorsels(700, 13, count).ok());
  EXPECT_EQ(covered.load(), 700u);
}

TEST(TaskPoolTest, ResolveAndMorselHelpers) {
  EXPECT_GE(ResolveThreads(0), 1);  // auto, whatever the host reports
  EXPECT_EQ(ResolveThreads(1), 1);
  EXPECT_EQ(ResolveThreads(6), 6);
  for (int threads : {1, 2, 4, 8}) {
    for (size_t total : {0ul, 10ul, 480ul, 1000000ul}) {
      size_t m = MorselFor(total, threads);
      EXPECT_GE(m, 64u);
      EXPECT_LE(m, 1024u);
    }
  }
}

// ---------------------------------------------------------------------------
// Serial vs parallel equality, every workload query, both engines
// ---------------------------------------------------------------------------

void ExpectSameRows(const TablePtr& a, const TablePtr& b) {
  ASSERT_EQ(a->num_rows(), b->num_rows());
  std::vector<Row> ra = a->rows(), rb = b->rows();
  std::sort(ra.begin(), ra.end(), RowLess());
  std::sort(rb.begin(), rb.end(), RowLess());
  for (size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(CompareRows(ra[i], rb[i]), 0) << "row " << i;
  }
}

class WorkloadEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = bench::MakeScoreDb(480).release();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* WorkloadEquivalenceTest::db_ = nullptr;

TEST_F(WorkloadEquivalenceTest, BaselineMatchesSerialAtEveryThreadCount) {
  for (const bench::NamedQuery& q : bench::Figure1Queries()) {
    ExecOptions serial;
    serial.num_threads = 1;
    Result<TablePtr> base = db_->Query(q.sql, serial);
    ASSERT_TRUE(base.ok()) << q.name << ": " << base.status().ToString();
    for (int threads : {2, 4, 8}) {
      ExecOptions exec;
      exec.num_threads = threads;
      Result<TablePtr> parallel = db_->Query(q.sql, exec);
      ASSERT_TRUE(parallel.ok())
          << q.name << " t=" << threads << ": "
          << parallel.status().ToString();
      ExpectSameRows(*base, *parallel);
    }
  }
}

TEST_F(WorkloadEquivalenceTest, IcebergMatchesSerialAtEveryThreadCount) {
  for (const bench::NamedQuery& q : bench::Figure1Queries()) {
    IcebergOptions serial = IcebergOptions::All();
    serial.base_exec.num_threads = 1;
    Result<TablePtr> base = db_->QueryIceberg(q.sql, serial);
    ASSERT_TRUE(base.ok()) << q.name << ": " << base.status().ToString();
    for (int threads : {2, 4, 8}) {
      IcebergOptions options = IcebergOptions::All();
      options.base_exec.num_threads = threads;
      Result<TablePtr> parallel = db_->QueryIceberg(q.sql, options);
      ASSERT_TRUE(parallel.ok())
          << q.name << " t=" << threads << ": "
          << parallel.status().ToString();
      ExpectSameRows(*base, *parallel);
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel NLJP: shared cache, determinism, worker stats
// ---------------------------------------------------------------------------

constexpr char kSkyband[] =
    "SELECT L.id, COUNT(*) FROM object L, object R "
    "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
    "GROUP BY L.id HAVING COUNT(*) <= 12";

class ParallelNljpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ObjectConfig cfg;
    cfg.num_objects = 400;
    cfg.domain = 30;  // duplicate-rich: memoization and pruning both apply
    ASSERT_TRUE(RegisterObjects(&db_, cfg).ok());
    base_ = *db_.Query(kSkyband);
  }
  Database db_;
  TablePtr base_;
};

TEST_F(ParallelNljpTest, ParallelOutputIsCanonicallyOrderedAndStable) {
  IcebergOptions options = IcebergOptions::All();
  options.base_exec.num_threads = 4;
  Result<TablePtr> first = db_.QueryIceberg(kSkyband, options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Result<TablePtr> second = db_.QueryIceberg(kSkyband, options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ExpectSameRows(base_, *first);
  // Byte-identical order across runs, not just as a set: parallel results
  // are canonically sorted.
  ASSERT_EQ((*first)->num_rows(), (*second)->num_rows());
  for (size_t i = 0; i < (*first)->num_rows(); ++i) {
    ASSERT_EQ(CompareRows((*first)->rows()[i], (*second)->rows()[i]), 0);
  }
  for (size_t i = 1; i < (*first)->num_rows(); ++i) {
    ASSERT_FALSE(RowLess()((*first)->rows()[i], (*first)->rows()[i - 1]));
  }
}

TEST_F(ParallelNljpTest, PerWorkerCountersAreSurfaced) {
  IcebergOptions options = IcebergOptions::All();
  options.base_exec.num_threads = 4;
  IcebergReport report;
  ASSERT_TRUE(db_.QueryIceberg(kSkyband, options, &report).ok());
  ASSERT_TRUE(report.used_nljp);
  EXPECT_EQ(report.nljp_stats.workers, 4u);
  ASSERT_EQ(report.nljp_stats.bindings_per_worker.size(), 4u);
  size_t sum = 0;
  for (size_t n : report.nljp_stats.bindings_per_worker) sum += n;
  EXPECT_EQ(sum, report.nljp_stats.bindings_total);
  EXPECT_NE(report.nljp_stats.ToString().find("workers=4"),
            std::string::npos);
}

TEST_F(ParallelNljpTest, SharedCacheBoundHoldsUnderConcurrency) {
  IcebergOptions options = IcebergOptions::All();
  options.base_exec.num_threads = 4;
  options.max_cache_entries = 8;
  IcebergReport report;
  Result<TablePtr> smart = db_.QueryIceberg(kSkyband, options, &report);
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  ExpectSameRows(base_, *smart);
  ASSERT_TRUE(report.used_nljp);
  EXPECT_LE(report.nljp_stats.cache_entries, 8u);
  EXPECT_GT(report.nljp_stats.cache_evictions, 0u);
}

TEST_F(ParallelNljpTest, TinySharedCacheBoundsStillCorrect) {
  for (size_t bound : {1u, 2u, 16u}) {
    for (int threads : {2, 4, 8}) {
      IcebergOptions options = IcebergOptions::All();
      options.base_exec.num_threads = threads;
      options.max_cache_entries = bound;
      IcebergReport report;
      Result<TablePtr> smart = db_.QueryIceberg(kSkyband, options, &report);
      ASSERT_TRUE(smart.ok())
          << "bound=" << bound << " t=" << threads << ": "
          << smart.status().ToString();
      ExpectSameRows(base_, *smart);
      EXPECT_LE(report.nljp_stats.cache_entries, bound)
          << "bound=" << bound << " t=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Governor trips while four workers run
// ---------------------------------------------------------------------------

TEST_F(ParallelNljpTest, InjectedCancellationTripsCleanlyAcrossWorkers) {
  GovernorProbe probe;
  probe.on_check = [](size_t ordinal) {
    return ordinal == 40 ? Status::Cancelled("injected mid-run cancel")
                         : Status::OK();
  };
  auto governor = std::make_shared<QueryGovernor>(QueryGovernor::Limits{},
                                                  probe);
  IcebergOptions options = IcebergOptions::All();
  options.base_exec.num_threads = 4;
  options.governor = governor;
  Result<TablePtr> smart = db_.QueryIceberg(kSkyband, options);
  ASSERT_FALSE(smart.ok());
  EXPECT_TRUE(smart.status().IsCancelled()) << smart.status().ToString();
  // No torn accounting: every reservation (bindings, groups, cache) was
  // released on the error path.
  EXPECT_EQ(governor->bytes_in_use(), 0u);
}

TEST_F(ParallelNljpTest, BudgetExhaustionTripsCleanlyAcrossWorkers) {
  QueryGovernor::Limits limits;
  limits.memory_budget_bytes = 16 * 1024;  // far below the mandatory state
  auto governor = std::make_shared<QueryGovernor>(limits);
  IcebergOptions options = IcebergOptions::All();
  options.base_exec.num_threads = 4;
  options.governor = governor;
  Result<TablePtr> smart = db_.QueryIceberg(kSkyband, options);
  ASSERT_FALSE(smart.ok());
  EXPECT_TRUE(smart.status().IsResourceExhausted())
      << smart.status().ToString();
  EXPECT_EQ(governor->bytes_in_use(), 0u);
}

TEST_F(ParallelNljpTest, ExternalCancelDuringParallelBaseline) {
  GovernorProbe probe;
  probe.on_check = [](size_t ordinal) {
    return ordinal == 25 ? Status::Cancelled("client disconnect")
                         : Status::OK();
  };
  auto governor = std::make_shared<QueryGovernor>(QueryGovernor::Limits{},
                                                  probe);
  ExecOptions exec;
  exec.num_threads = 4;
  exec.governor = governor;
  Result<TablePtr> result = db_.Query(kSkyband, exec);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_EQ(governor->bytes_in_use(), 0u);
}

}  // namespace
}  // namespace iceberg
