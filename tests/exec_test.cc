// Tests for src/exec: baseline query execution — join methods, grouping,
// HAVING, projection, DISTINCT, parallel (Vendor A) equivalence, and the
// Appendix E plan shapes.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/engine/database.h"
#include "src/exec/executor.h"
#include "src/exec/join_pipeline.h"
#include "src/workload/object.h"

namespace iceberg {
namespace {

std::vector<Row> Sorted(const TablePtr& t) {
  std::vector<Row> rows = t->rows();
  std::sort(rows.begin(), rows.end(), RowLess());
  return rows;
}

void ExpectSame(const TablePtr& a, const TablePtr& b) {
  ASSERT_EQ(a->num_rows(), b->num_rows());
  std::vector<Row> ra = Sorted(a), rb = Sorted(b);
  for (size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(CompareRows(ra[i], rb[i]), 0)
        << RowToString(ra[i]) << " vs " << RowToString(rb[i]);
  }
}

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("emp", Schema({{"id", DataType::kInt64},
                                               {"dept", DataType::kInt64},
                                               {"salary", DataType::kInt64}}))
                    .ok());
    ASSERT_TRUE(db_.CreateTable("dept", Schema({{"id", DataType::kInt64},
                                                {"name", DataType::kString}}))
                    .ok());
    int emps[][3] = {{1, 10, 100}, {2, 10, 200}, {3, 20, 150},
                     {4, 20, 250},  {5, 30, 50}};
    for (auto& e : emps) {
      ASSERT_TRUE(db_.Insert("emp", {Value::Int(e[0]), Value::Int(e[1]),
                                     Value::Int(e[2])})
                      .ok());
    }
    ASSERT_TRUE(db_.Insert("dept", {Value::Int(10), Value::Str("eng")}).ok());
    ASSERT_TRUE(db_.Insert("dept", {Value::Int(20), Value::Str("ops")}).ok());
    ASSERT_TRUE(db_.Insert("dept", {Value::Int(30), Value::Str("hr")}).ok());
  }

  Database db_;
};

TEST_F(ExecTest, SingleTableProjectionAndFilter) {
  auto r = db_.Query("SELECT id, salary FROM emp WHERE salary > 150");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 2u);
}

TEST_F(ExecTest, EquiJoinProducesAllMatches) {
  auto r = db_.Query(
      "SELECT e.id, d.name FROM emp e, dept d WHERE e.dept = d.id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 5u);
}

TEST_F(ExecTest, JoinWithArithmeticProbeExpression) {
  auto r = db_.Query(
      "SELECT e.id FROM emp e, dept d WHERE e.dept + 0 = d.id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 5u);
}

TEST_F(ExecTest, GroupByHavingSum) {
  auto r = db_.Query(
      "SELECT dept, SUM(salary) FROM emp GROUP BY dept "
      "HAVING SUM(salary) >= 300");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 2u);  // dept 10: 300, dept 20: 400
}

TEST_F(ExecTest, ScalarAggregateOverEmptyInput) {
  auto r = db_.Query("SELECT COUNT(*) FROM emp WHERE salary > 10000");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->num_rows(), 1u);
  EXPECT_EQ((*r)->row(0)[0].AsInt(), 0);
}

TEST_F(ExecTest, GroupedAggregateOverEmptyInputIsEmpty) {
  auto r = db_.Query(
      "SELECT dept, COUNT(*) FROM emp WHERE salary > 10000 GROUP BY dept");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 0u);
}

TEST_F(ExecTest, DistinctDeduplicates) {
  auto r = db_.Query("SELECT DISTINCT dept FROM emp");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 3u);
}

TEST_F(ExecTest, CrossJoinWhenNoPredicate) {
  auto r = db_.Query("SELECT e.id FROM emp e, dept d");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 15u);
}

TEST_F(ExecTest, InequalityJoin) {
  auto r = db_.Query(
      "SELECT a.id, b.id FROM emp a, emp b WHERE a.salary < b.salary");
  ASSERT_TRUE(r.ok());
  // salaries 50,100,150,200,250 all distinct -> C(5,2) = 10 ordered pairs.
  EXPECT_EQ((*r)->num_rows(), 10u);
}

TEST_F(ExecTest, StatsCountJoinWork) {
  ExecStats stats;
  auto r = db_.Query("SELECT e.id FROM emp e, dept d WHERE e.dept = d.id",
                     ExecOptions::Postgres(), &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(stats.rows_joined, 5u);
  EXPECT_GT(stats.join_pairs_examined, 0u);
}

TEST_F(ExecTest, HavingOnCountDistinct) {
  auto r = db_.Query(
      "SELECT dept, COUNT(DISTINCT salary) FROM emp GROUP BY dept "
      "HAVING COUNT(DISTINCT salary) >= 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->num_rows(), 2u);
}

// ----- join-method selection -----------------------------------------------

TEST(JoinPipeline, PicksHashJoinWithoutIndexes) {
  Database db;
  ASSERT_TRUE(db.CreateTable("a", Schema({{"k", DataType::kInt64}})).ok());
  ASSERT_TRUE(db.CreateTable("b", Schema({{"k", DataType::kInt64}})).ok());
  auto block = db.Prepare("SELECT a.k FROM a, b WHERE a.k = b.k");
  ASSERT_TRUE(block.ok());
  Executor ex;  // indexes enabled, but none exist
  std::string plan = ex.Explain(*block);
  EXPECT_NE(plan.find("HashJoin"), std::string::npos) << plan;
}

TEST(JoinPipeline, PicksHashIndexProbeWhenAvailable) {
  Database db;
  ASSERT_TRUE(db.CreateTable("a", Schema({{"k", DataType::kInt64}})).ok());
  ASSERT_TRUE(db.CreateTable("b", Schema({{"k", DataType::kInt64}})).ok());
  ASSERT_TRUE(db.CreateHashIndex("b", {"k"}).ok());
  auto block = db.Prepare("SELECT a.k FROM a, b WHERE a.k = b.k");
  Executor ex;
  std::string plan = ex.Explain(*block);
  EXPECT_NE(plan.find("IndexNLJoin(hash)"), std::string::npos) << plan;
}

TEST(JoinPipeline, PicksBtreeRangeForInequality) {
  Database db;
  ObjectConfig cfg;
  cfg.num_objects = 50;
  ASSERT_TRUE(RegisterObjects(&db, cfg).ok());
  auto block = db.Prepare(
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x AND L.y <= R.y GROUP BY L.id HAVING COUNT(*) <= 5");
  Executor ex;
  std::string plan = ex.Explain(*block);
  // The Appendix E shape: hash aggregate over an indexed NLJ range probe.
  EXPECT_NE(plan.find("HashAggregate"), std::string::npos) << plan;
  EXPECT_NE(plan.find("IndexNLJoin(btree-range)"), std::string::npos) << plan;
}

TEST(JoinPipeline, DisablingIndexesFallsBackToBlockNlj) {
  Database db;
  ObjectConfig cfg;
  cfg.num_objects = 50;
  ASSERT_TRUE(RegisterObjects(&db, cfg).ok());
  auto block = db.Prepare(
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x GROUP BY L.id HAVING COUNT(*) <= 5");
  ExecOptions opts;
  opts.use_indexes = false;
  Executor ex(opts);
  std::string plan = ex.Explain(*block);
  EXPECT_EQ(plan.find("IndexNLJoin"), std::string::npos) << plan;
}

TEST(JoinPipeline, IndexAndNoIndexAgree) {
  Database db;
  ObjectConfig cfg;
  cfg.num_objects = 300;
  cfg.domain = 50;
  ASSERT_TRUE(RegisterObjects(&db, cfg).ok());
  const char* sql =
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
      "GROUP BY L.id HAVING COUNT(*) <= 10";
  ExecOptions no_idx;
  no_idx.use_indexes = false;
  auto with_index = db.Query(sql);
  auto without_index = db.Query(sql, no_idx);
  ASSERT_TRUE(with_index.ok());
  ASSERT_TRUE(without_index.ok());
  ExpectSame(*with_index, *without_index);
}

// ----- Vendor A (parallel) profile ------------------------------------------

TEST(VendorA, ParallelAggregationMatchesSequential) {
  Database db;
  ObjectConfig cfg;
  cfg.num_objects = 2000;  // above the parallel threshold
  cfg.domain = 200;
  ASSERT_TRUE(RegisterObjects(&db, cfg).ok());
  const char* sql =
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
      "GROUP BY L.id HAVING COUNT(*) <= 30";
  auto sequential = db.Query(sql, ExecOptions::Postgres());
  auto parallel = db.Query(sql, ExecOptions::VendorA());
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectSame(*sequential, *parallel);
}

TEST(VendorA, ParallelDistinctProjectionMatches) {
  Database db;
  ObjectConfig cfg;
  cfg.num_objects = 3000;
  cfg.domain = 40;
  ASSERT_TRUE(RegisterObjects(&db, cfg).ok());
  const char* sql = "SELECT DISTINCT o.x FROM object o WHERE o.x < 20";
  auto sequential = db.Query(sql, ExecOptions::Postgres());
  auto parallel = db.Query(sql, ExecOptions::VendorA());
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  ExpectSame(*sequential, *parallel);
}

TEST(VendorA, ExplainShowsGather) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", Schema({{"a", DataType::kInt64}})).ok());
  auto block = db.Prepare("SELECT a FROM t");
  Executor ex(ExecOptions::VendorA());
  EXPECT_NE(ex.Explain(*block).find("Gather (workers=4)"),
            std::string::npos);
}

TEST(VendorA, ParallelCountDistinctMerges) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", Schema({{"g", DataType::kInt64},
                                          {"v", DataType::kInt64}}))
                  .ok());
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(
        db.Insert("t", {Value::Int(i % 3), Value::Int(i % 17)}).ok());
  }
  const char* sql =
      "SELECT g, COUNT(DISTINCT v) FROM t GROUP BY g "
      "HAVING COUNT(DISTINCT v) >= 1";
  auto seq = db.Query(sql, ExecOptions::Postgres());
  auto par = db.Query(sql, ExecOptions::VendorA());
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  ExpectSame(*seq, *par);
}

// ----- GroupAndProject helper ------------------------------------------------

TEST(GroupAndProject, MatchesExecutorOnMaterializedRows) {
  Database db;
  ObjectConfig cfg;
  cfg.num_objects = 200;
  cfg.domain = 30;
  ASSERT_TRUE(RegisterObjects(&db, cfg).ok());
  auto block = db.Prepare(
      "SELECT o.x, COUNT(*) FROM object o GROUP BY o.x HAVING COUNT(*) >= 3");
  ASSERT_TRUE(block.ok());
  // Materialize the single-table "join" then aggregate via the helper.
  std::vector<Row> rows = (*db.GetTable("object"))->rows();
  auto via_helper = GroupAndProject(*block, rows, nullptr);
  ASSERT_TRUE(via_helper.ok());
  auto via_executor = Executor().Execute(*block);
  ASSERT_TRUE(via_executor.ok());
  ExpectSame(*via_helper, *via_executor);
}

}  // namespace
}  // namespace iceberg
