// Tests for the cost-based optimizer (PR 10): column statistics
// (equi-depth histograms, HLL NDV), the cardinality estimator, the
// left-deep join-order enumerator, and their integration into the
// executor, plan cache and a-priori gate.
//
//  - CBO on vs off must be byte-identical on every workload query,
//    across both engines and 1/8 threads (a join order never changes the
//    result set, only its cost);
//  - statistics must be version-cached and sanely bounded (NDV error,
//    histogram boundaries);
//  - the enumerator must front-load selective relations and honor exact
//    post-transfer survivor overrides;
//  - a captured JoinOrderSchedule must replay without re-enumerating;
//  - the a-priori cost gate must skip a reducer whose HAVING keeps every
//    group over a large table, and stand down below the size floor.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/workload_queries.h"
#include "src/engine/database.h"
#include "src/exec/exec_options.h"
#include "src/obs/metrics.h"
#include "src/optimizer/iceberg_optimizer.h"
#include "src/plan/cost/cardinality.h"
#include "src/plan/cost/join_order.h"
#include "src/stats/column_stats.h"
#include "src/storage/table.h"

namespace iceberg {
namespace {

// Restores the process-wide chicken bits on exit (including via assertion
// failures) so this suite composes with the CI env-var sweeps.
struct FlagGuard {
  bool vec = VectorizedExecEnabled();
  bool transfer = PredicateTransferEnabled();
  bool cbo = CboEnabled();
  ~FlagGuard() {
    SetVectorizedExecEnabled(vec);
    SetPredicateTransferEnabled(transfer);
    SetCboEnabled(cbo);
  }
};

void ExpectSameRows(const TablePtr& a, const TablePtr& b,
                    const std::string& ctx) {
  ASSERT_EQ(a->num_rows(), b->num_rows()) << ctx;
  std::vector<Row> ra = a->rows(), rb = b->rows();
  std::sort(ra.begin(), ra.end(), RowLess());
  std::sort(rb.begin(), rb.end(), RowLess());
  for (size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(CompareRows(ra[i], rb[i]), 0) << ctx << " row " << i;
  }
}

uint64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().GetCounter(name)->value();
}

// ---------------------------------------------------------------------------
// Workload differential: every query, both engines, 1 and 8 threads
// ---------------------------------------------------------------------------

TEST(CboWorkloadTest, OnOffIdenticalResults) {
  FlagGuard guard;
  SetCboEnabled(true);
  std::unique_ptr<Database> db = bench::MakeScoreDb(1200);
  for (const bench::NamedQuery& q : bench::Figure1Queries()) {
    for (int threads : {1, 8}) {
      const std::string ctx = q.name + " t=" + std::to_string(threads);

      ExecOptions on;
      on.num_threads = threads;
      Result<TablePtr> base_on = db->Query(q.sql, on);
      ExecOptions off = on;
      off.cbo = false;
      Result<TablePtr> base_off = db->Query(q.sql, off);
      ASSERT_TRUE(base_on.ok()) << ctx << ": " << base_on.status().ToString();
      ASSERT_TRUE(base_off.ok()) << ctx << ": " << base_off.status().ToString();
      ExpectSameRows(*base_on, *base_off, ctx + " baseline");
      if (::testing::Test::HasFatalFailure()) return;

      IcebergOptions ion;
      ion.base_exec.num_threads = threads;
      Result<TablePtr> ice_on = db->QueryIceberg(q.sql, ion);
      IcebergOptions ioff = ion;
      ioff.base_exec.cbo = false;
      Result<TablePtr> ice_off = db->QueryIceberg(q.sql, ioff);
      ASSERT_TRUE(ice_on.ok()) << ctx << ": " << ice_on.status().ToString();
      ASSERT_TRUE(ice_off.ok()) << ctx << ": " << ice_off.status().ToString();
      ExpectSameRows(*ice_on, *ice_off, ctx + " iceberg");
      ExpectSameRows(*base_on, *ice_on, ctx + " engines");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(CboWorkloadTest, ChickenBitDisablesCbo) {
  FlagGuard guard;
  std::unique_ptr<Database> db = bench::MakeScoreDb(600);
  const std::string sql = bench::SkybandSql("hits", "hruns", 50);

  SetCboEnabled(false);
  uint64_t plans_before = CounterValue("cbo.plans");
  ExecOptions exec;  // per-query option stays on; the global bit wins
  Result<TablePtr> disabled = db->Query(sql, exec);
  ASSERT_TRUE(disabled.ok()) << disabled.status().ToString();
  EXPECT_EQ(CounterValue("cbo.plans"), plans_before);

  SetCboEnabled(true);
  Result<TablePtr> enabled = db->Query(sql, exec);
  ASSERT_TRUE(enabled.ok()) << enabled.status().ToString();
  EXPECT_GT(CounterValue("cbo.plans"), plans_before);
  ExpectSameRows(*disabled, *enabled, "chicken bit");
}

// ---------------------------------------------------------------------------
// Column statistics: histogram boundaries, NDV error, version caching
// ---------------------------------------------------------------------------

class StatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("u", Schema({{"v", DataType::kInt64},
                                             {"w", DataType::kInt64}}))
                    .ok());
    // v: uniform 0..9999 (all distinct); w: 0..499 cycling (500 distinct).
    for (int i = 0; i < 10000; ++i) {
      ASSERT_TRUE(
          db_.Insert("u", {Value::Int(i), Value::Int(i % 500)}).ok());
    }
  }
  Database db_;
};

TEST_F(StatsTest, HistogramBoundarySelectivity) {
  TablePtr t = *db_.GetTable("u");
  TableStatsPtr stats = GetOrBuildTableStats(*t);
  ASSERT_EQ(stats->row_count(), 10000u);
  const ColumnStats& v = stats->column(0);

  // Range selectivity via equi-depth interpolation: the midpoint splits
  // the uniform domain evenly; the extremes pin to 0 / 1.
  EXPECT_NEAR(v.RangeSelectivity(BinaryOp::kLt, Value::Int(5000)), 0.5, 0.06);
  EXPECT_NEAR(v.RangeSelectivity(BinaryOp::kLe, Value::Int(9999)), 1.0, 0.02);
  EXPECT_LE(v.RangeSelectivity(BinaryOp::kLt, Value::Int(-5)), 0.01);
  EXPECT_GE(v.RangeSelectivity(BinaryOp::kGt, Value::Int(-5)), 0.99);

  // Point selectivity ~ 1/NDV for an in-domain value; 0 outside [min,max].
  EXPECT_NEAR(v.EqSelectivity(Value::Int(42)), 1.0 / 10000, 5e-4);
  EXPECT_EQ(v.EqSelectivity(Value::Int(123456)), 0.0);
}

TEST_F(StatsTest, NdvSketchErrorBound) {
  TablePtr t = *db_.GetTable("u");
  TableStatsPtr stats = GetOrBuildTableStats(*t);
  // HLL with the implementation's precision stays well within 15% on
  // 10k/500-distinct columns.
  EXPECT_NEAR(stats->column(0).ndv, 10000.0, 1500.0);
  EXPECT_NEAR(stats->column(1).ndv, 500.0, 75.0);
}

TEST_F(StatsTest, StatsCachedPerVersionAndInvalidated) {
  TablePtr t = *db_.GetTable("u");
  TableStatsPtr first = GetOrBuildTableStats(*t);
  TableStatsPtr again = GetOrBuildTableStats(*t);
  EXPECT_EQ(first.get(), again.get());  // cached, no rebuild
  EXPECT_GT(first->ApproxBytes(), 0u);

  // A mutation bumps the version stamp; the next lookup rebuilds.
  ASSERT_TRUE(db_.Insert("u", {Value::Int(10000), Value::Int(0)}).ok());
  TableStatsPtr rebuilt = GetOrBuildTableStats(*t);
  EXPECT_NE(first.get(), rebuilt.get());
  EXPECT_NE(first->version(), rebuilt->version());
  EXPECT_EQ(rebuilt->row_count(), 10001u);
}

// ---------------------------------------------------------------------------
// Cardinality estimator + join-order enumerator
// ---------------------------------------------------------------------------

class JoinOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BaseballConfig config;
    config.num_rows = 6000;
    config.num_players = 500;
    ASSERT_TRUE(RegisterBaseball(&db_, config).ok());
  }
  Database db_;
};

TEST_F(JoinOrderTest, LocalPredicatesShrinkLocalRows) {
  auto block = db_.Prepare(
      "SELECT COUNT(*) FROM score a, score b "
      "WHERE a.pid = b.pid AND b.hits <= 10");
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  CardinalityEstimator est(*block);
  EXPECT_DOUBLE_EQ(est.RawRows(0), est.LocalRows(0));
  EXPECT_LT(est.LocalRows(1), 0.5 * est.RawRows(1));
}

TEST_F(JoinOrderTest, SelectiveTableMovesFirst) {
  // FROM order scans the unfiltered `a` first; the enumerator must lead
  // with `c` (hits <= 2 keeps a sliver) and chain the pid joins after.
  auto block = db_.Prepare(
      "SELECT COUNT(*) FROM score a, score b, score c "
      "WHERE a.pid = b.pid AND b.pid = c.pid AND c.hits <= 2");
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  CardinalityEstimator est(*block);
  JoinOrderInputs inputs = MakeJoinOrderInputs(est, nullptr);
  JoinOrderPlan plan = ChooseJoinOrder(est, inputs);
  ASSERT_EQ(plan.order.size(), 3u);
  EXPECT_TRUE(plan.reordered);
  EXPECT_EQ(plan.order[0], 2u);
  EXPECT_LT(plan.cost, 0.7 * plan.from_order_cost);
  // Cumulative estimates are monotone in shape: level 0 carries the
  // filtered base estimate, well under the raw table size.
  ASSERT_EQ(plan.est_rows.size(), 3u);
  EXPECT_LT(plan.est_rows[0], est.RawRows(2));
}

TEST_F(JoinOrderTest, ExactSurvivorCountsOverrideHistograms) {
  auto block = db_.Prepare(
      "SELECT COUNT(*) FROM score a, score b "
      "WHERE a.pid = b.pid AND b.hits <= 10");
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  CardinalityEstimator est(*block);
  // Transfer reported only 7 survivors for table 0 (exact); table 1 keeps
  // its histogram estimate (-1 = no override).
  std::vector<double> exact = {7.0, -1.0};
  JoinOrderInputs inputs = MakeJoinOrderInputs(est, &exact);
  EXPECT_DOUBLE_EQ(inputs.base_rows[0], 7.0);
  EXPECT_TRUE(inputs.exact[0]);
  EXPECT_FALSE(inputs.exact[1]);
  EXPECT_DOUBLE_EQ(inputs.base_rows[1], est.LocalRows(1));
}

TEST_F(JoinOrderTest, PermuteBlockPreservesSemantics) {
  const std::string sql =
      "SELECT a.pid, COUNT(*) FROM score a, score b, score c "
      "WHERE a.pid = b.pid AND b.pid = c.pid AND c.hits <= 20 "
      "GROUP BY a.pid HAVING COUNT(*) >= 2";
  auto block = db_.Prepare(sql);
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  Result<QueryBlock> permuted = PermuteBlock(*block, {2, 0, 1});
  ASSERT_TRUE(permuted.ok()) << permuted.status().ToString();
  EXPECT_EQ(permuted->tables[0].alias, "c");
  EXPECT_EQ(permuted->tables[1].alias, "a");

  Executor exec((ExecOptions()));
  Result<TablePtr> orig = exec.Execute(*block);
  Result<TablePtr> perm = exec.Execute(*permuted);
  ASSERT_TRUE(orig.ok()) << orig.status().ToString();
  ASSERT_TRUE(perm.ok()) << perm.status().ToString();
  ExpectSameRows(*orig, *perm, "permuted block");
}

TEST_F(JoinOrderTest, InvalidPermutationRejected) {
  auto block = db_.Prepare(
      "SELECT COUNT(*) FROM score a, score b WHERE a.pid = b.pid");
  ASSERT_TRUE(block.ok());
  EXPECT_FALSE(PermuteBlock(*block, {0, 0}).ok());
  EXPECT_FALSE(PermuteBlock(*block, {0}).ok());
}

// ---------------------------------------------------------------------------
// End-to-end reordering + schedule capture/replay
// ---------------------------------------------------------------------------

TEST_F(JoinOrderTest, ReordersSkewedJoinAndMatchesFromOrder) {
  FlagGuard guard;
  SetCboEnabled(true);
  const std::string sql =
      "SELECT a.pid, COUNT(*) FROM score a, score b, score c "
      "WHERE a.pid = b.pid AND b.pid = c.pid AND c.hits <= 2 "
      "GROUP BY a.pid";
  // Transfer off: with the graph running, its exact survivor counts
  // already shrink every pid-linked table and FROM order stays cheapest
  // (correctly, no reorder). Histograms must then carry the decision.
  uint64_t reorders_before = CounterValue("cbo.reorders");
  ExecOptions on;
  on.predicate_transfer = false;
  Result<TablePtr> with_cbo = db_.Query(sql, on);
  ASSERT_TRUE(with_cbo.ok()) << with_cbo.status().ToString();
  EXPECT_GT(CounterValue("cbo.reorders"), reorders_before);

  ExecOptions off;
  off.cbo = false;
  off.predicate_transfer = false;
  Result<TablePtr> without = db_.Query(sql, off);
  ASSERT_TRUE(without.ok()) << without.status().ToString();
  ExpectSameRows(*with_cbo, *without, "reordered vs FROM order");
}

TEST_F(JoinOrderTest, CapturedScheduleReplaysWithoutEnumeration) {
  FlagGuard guard;
  SetCboEnabled(true);
  const std::string sql =
      "SELECT a.pid, COUNT(*) FROM score a, score b, score c "
      "WHERE a.pid = b.pid AND b.pid = c.pid AND c.hits <= 2 "
      "GROUP BY a.pid";

  JoinOrderSchedule schedule;
  ExecOptions capture;
  capture.predicate_transfer = false;  // histogram-driven order (see above)
  capture.join_order_capture = &schedule;
  Result<TablePtr> first = db_.Query(sql, capture);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(schedule.valid);
  ASSERT_EQ(schedule.order.size(), 3u);
  EXPECT_EQ(schedule.order[0], 2u);

  uint64_t replays_before = CounterValue("cbo.order_replays");
  ExecOptions replay;
  replay.predicate_transfer = false;
  replay.join_order_replay = &schedule;
  Result<TablePtr> second = db_.Query(sql, replay);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GT(CounterValue("cbo.order_replays"), replays_before);
  ExpectSameRows(*first, *second, "schedule replay");
}

// ---------------------------------------------------------------------------
// HAVING keep-fraction model + the a-priori cost gate
// ---------------------------------------------------------------------------

TEST(HavingModelTest, KeepFractionShapes) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", Schema({{"k", DataType::kInt64}})).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(1)}).ok());
  auto ge1 = db.Prepare("SELECT k, COUNT(*) FROM t GROUP BY k "
                        "HAVING COUNT(*) >= 1");
  ASSERT_TRUE(ge1.ok());
  // Every group has at least one row: the exponential tail keeps all.
  EXPECT_DOUBLE_EQ(EstimateHavingKeepFraction(ge1->having, 4.0), 1.0);

  auto ge100 = db.Prepare("SELECT k, COUNT(*) FROM t GROUP BY k "
                          "HAVING COUNT(*) >= 100");
  ASSERT_TRUE(ge100.ok());
  double tail = EstimateHavingKeepFraction(ge100->having, 4.0);
  EXPECT_GE(tail, 0.0);
  EXPECT_LT(tail, 0.01);  // mean 4, threshold 100: almost nothing survives

  auto le = db.Prepare("SELECT k, COUNT(*) FROM t GROUP BY k "
                       "HAVING COUNT(*) <= 100");
  ASSERT_TRUE(le.ok());
  EXPECT_GT(EstimateHavingKeepFraction(le->having, 4.0), 0.99);

  // Unknown shapes must return -1 so the gate stands down.
  auto sum = db.Prepare("SELECT k, SUM(k) FROM t GROUP BY k "
                        "HAVING SUM(k) >= 10");
  ASSERT_TRUE(sum.ok());
  EXPECT_LT(EstimateHavingKeepFraction(sum->having, 4.0), 0.0);
}

class AprioriGateTest : public ::testing::Test {
 protected:
  void FillBaskets(size_t rows) {
    ASSERT_TRUE(db_.CreateTable("basket", Schema({{"bid", DataType::kInt64},
                                                  {"item", DataType::kInt64}}))
                    .ok());
    ASSERT_TRUE(db_.DeclareKey("basket", {"bid", "item"}).ok());
    for (size_t i = 0; i < rows; ++i) {
      ASSERT_TRUE(db_.Insert("basket", {Value::Int(int64_t(i / 3)),
                                        Value::Int(int64_t(i % 40))})
                      .ok());
    }
  }
  Database db_;
};

TEST_F(AprioriGateTest, SkipsUselessReducerOnLargeTable) {
  FlagGuard guard;
  SetCboEnabled(true);
  FillBaskets(12001);  // above the 10k gate floor
  // HAVING COUNT(*) >= 1 keeps every group: the reducer would scan and
  // re-aggregate 12k rows to delete nothing.
  const std::string sql =
      "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 "
      "WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item "
      "HAVING COUNT(*) >= 1";

  uint64_t skipped_before = CounterValue("cbo.apriori_skipped");
  IcebergReport gated;
  Result<TablePtr> on = db_.QueryIceberg(sql, IcebergOptions::All(), &gated);
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  EXPECT_GT(CounterValue("cbo.apriori_skipped"), skipped_before);
  EXPECT_TRUE(gated.reductions.empty()) << gated.ToString();

  // Chicken bit off: the heuristic reducer applies as before the CBO.
  SetCboEnabled(false);
  IcebergReport ungated;
  Result<TablePtr> off = db_.QueryIceberg(sql, IcebergOptions::All(), &ungated);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_FALSE(ungated.reductions.empty()) << ungated.ToString();
  ExpectSameRows(*on, *off, "gate on/off");
}

TEST_F(AprioriGateTest, StandsDownOnSelectiveHavingAndSmallTables) {
  FlagGuard guard;
  SetCboEnabled(true);
  FillBaskets(12001);
  // A selective HAVING (>= 60 with ~3-row baskets) passes the gate even on
  // a large table — the reducer is expected to delete nearly everything.
  const std::string selective =
      "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 "
      "WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item "
      "HAVING COUNT(*) >= 60";
  IcebergReport report;
  Result<TablePtr> r =
      db_.QueryIceberg(selective, IcebergOptions::All(), &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(report.reductions.empty()) << report.ToString();
}

}  // namespace
}  // namespace iceberg
