// Unit tests for src/plan: binding, name resolution, output schema
// inference, and query-level FD assembly.

#include <gtest/gtest.h>

#include "src/parser/parser.h"
#include "src/plan/query_block.h"

namespace iceberg {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    basket_ = std::make_shared<Table>(
        "basket",
        Schema({{"bid", DataType::kInt64}, {"item", DataType::kInt64}}));
    score_ = std::make_shared<Table>(
        "score", Schema({{"pid", DataType::kInt64},
                         {"year", DataType::kInt64},
                         {"hits", DataType::kDouble},
                         {"team", DataType::kString}}));
    score_fds_.Add({"pid", "year"}, {"pid", "year", "hits", "team"});
  }

  TableResolver Resolver() {
    return [this](const std::string& name) -> Result<CatalogEntry> {
      if (name == "basket") return CatalogEntry{basket_, FdSet()};
      if (name == "score") return CatalogEntry{score_, score_fds_};
      return Status::NotFound(name);
    };
  }

  Result<QueryBlock> Bind(const std::string& sql) {
    ICEBERG_ASSIGN_OR_RETURN(ParsedQuery q, ParseSql(sql));
    Binder binder(Resolver());
    return binder.Bind(*q.select);
  }

  TablePtr basket_, score_;
  FdSet score_fds_;
};

TEST_F(PlanTest, ResolvesQualifiedColumnsToFlatOffsets) {
  auto block = Bind(
      "SELECT i1.item, i2.item FROM basket i1, basket i2 "
      "WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item "
      "HAVING COUNT(*) >= 2");
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  EXPECT_EQ(block->TotalWidth(), 4u);
  // i2.bid is the third flat column (offset 2).
  const ExprPtr& eq = block->where_conjuncts[0];
  EXPECT_EQ(eq->children[0]->resolved_index, 0);
  EXPECT_EQ(eq->children[1]->resolved_index, 2);
  EXPECT_EQ(block->QualifiedNameOfOffset(2), "i2.bid");
  EXPECT_EQ(block->TableOfOffset(3), 1u);
}

TEST_F(PlanTest, UnqualifiedUniqueColumnResolves) {
  auto block = Bind("SELECT hits FROM score");
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  EXPECT_EQ(block->select[0].expr->resolved_index, 2);
}

TEST_F(PlanTest, AmbiguousColumnFails) {
  auto block = Bind("SELECT item FROM basket i1, basket i2");
  EXPECT_FALSE(block.ok());
  EXPECT_EQ(block.status().code(), StatusCode::kBindError);
}

TEST_F(PlanTest, UnknownColumnFails) {
  EXPECT_FALSE(Bind("SELECT nope FROM basket").ok());
}

TEST_F(PlanTest, UnknownTableFails) {
  EXPECT_FALSE(Bind("SELECT a FROM nonexistent").ok());
}

TEST_F(PlanTest, DuplicateAliasFails) {
  EXPECT_FALSE(Bind("SELECT 1 FROM basket b, score b").ok());
}

TEST_F(PlanTest, NonGroupedColumnInSelectFails) {
  auto block = Bind(
      "SELECT bid, COUNT(*) FROM basket GROUP BY item HAVING COUNT(*) >= 1");
  EXPECT_FALSE(block.ok());
}

TEST_F(PlanTest, OutputSchemaTypesAndNames) {
  auto block = Bind(
      "SELECT pid, AVG(hits) AS avg_hits, COUNT(*) FROM score GROUP BY pid");
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  const Schema& out = block->output_schema;
  ASSERT_EQ(out.num_columns(), 3u);
  EXPECT_EQ(out.column(0).name, "pid");
  EXPECT_EQ(out.column(0).type, DataType::kInt64);
  EXPECT_EQ(out.column(1).name, "avg_hits");
  EXPECT_EQ(out.column(1).type, DataType::kDouble);
  EXPECT_EQ(out.column(2).type, DataType::kInt64);
}

TEST_F(PlanTest, DuplicateOutputNamesDisambiguated) {
  auto block = Bind(
      "SELECT i1.item, i2.item FROM basket i1, basket i2 "
      "GROUP BY i1.item, i2.item");
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->output_schema.column(0).name, "item");
  EXPECT_EQ(block->output_schema.column(1).name, "item_2");
}

TEST_F(PlanTest, QueryFdsLiftTableFdsAndEqualities) {
  auto block = Bind(
      "SELECT s1.pid, COUNT(*) FROM score s1, score s2 "
      "WHERE s1.pid = s2.pid AND s1.year = s2.year "
      "GROUP BY s1.pid HAVING COUNT(*) >= 1");
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  FdSet fds = block->QueryFds();
  // s1 key determines s1 attributes...
  EXPECT_TRUE(fds.Determines(MakeAttrSet({"s1.pid", "s1.year"}),
                             MakeAttrSet({"s1.hits"})));
  // ...and via the equalities, s2's key and hence s2's attributes.
  EXPECT_TRUE(fds.Determines(MakeAttrSet({"s1.pid", "s1.year"}),
                             MakeAttrSet({"s2.hits"})));
}

TEST_F(PlanTest, QueryFdsConstantEquality) {
  auto block = Bind("SELECT pid FROM score WHERE year = 1995 GROUP BY pid");
  ASSERT_TRUE(block.ok());
  FdSet fds = block->QueryFds();
  // year = constant: {} -> year.
  EXPECT_TRUE(fds.Determines({}, MakeAttrSet({"score.year"})));
}

TEST_F(PlanTest, GroupByExpressionRejected) {
  EXPECT_FALSE(Bind("SELECT 1 FROM score GROUP BY pid + 1").ok());
}

TEST_F(PlanTest, AttributesOf) {
  auto block = Bind("SELECT 1 FROM basket i1, score s");
  ASSERT_TRUE(block.ok());
  AttrSet attrs = block->AttributesOf({0});
  EXPECT_EQ(attrs, MakeAttrSet({"i1.bid", "i1.item"}));
}

TEST_F(PlanTest, InferTypeArithmetic) {
  auto block = Bind("SELECT pid + 1, hits + 1, pid / 2 FROM score "
                    "GROUP BY pid, hits");
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block->output_schema.column(0).type, DataType::kInt64);
  EXPECT_EQ(block->output_schema.column(1).type, DataType::kDouble);
  EXPECT_EQ(block->output_schema.column(2).type, DataType::kDouble);
}

TEST_F(PlanTest, SubqueryInFromRejectedByBinder) {
  // The binder requires the engine to materialize subqueries first.
  ParsedQuery q = *ParseSql("SELECT s.a FROM (SELECT a FROM t) s");
  Binder binder(Resolver());
  EXPECT_FALSE(binder.Bind(*q.select).ok());
}

}  // namespace
}  // namespace iceberg
