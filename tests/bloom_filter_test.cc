// Unit tests for the register-blocked Bloom filter used by predicate
// transfer: sizing (including the zero-key and huge-cardinality edges),
// the empty-filter fast path, no false negatives, merge semantics, and
// the measured false-positive rate at the designed ~16 bits/key.

#include "src/exec/bloom.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace iceberg {
namespace {

// splitmix64: the same mixing quality PackedKey::hash() provides, so the
// FPR measurement reflects production probe distributions.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

TEST(BloomFilterTest, EmptyFilterRejectsEverything) {
  // BloomFilter(0) is a valid "no key can match" filter: probes return
  // false without relying on the word-mask arithmetic.
  BloomFilter empty(0);
  EXPECT_EQ(empty.num_inserted(), 0u);
  EXPECT_GE(empty.num_words(), 1u);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_FALSE(empty.MayContain(Mix(i)));
  }
  // Same fast path when sized for keys that never arrived.
  BloomFilter sized_but_empty(4096);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_FALSE(sized_but_empty.MayContain(Mix(i)));
  }
}

TEST(BloomFilterTest, NoFalseNegatives) {
  for (size_t n : {1u, 2u, 3u, 7u, 64u, 1000u, 10000u}) {
    BloomFilter filter(n);
    for (uint64_t i = 0; i < n; ++i) filter.Insert(Mix(i));
    EXPECT_EQ(filter.num_inserted(), n);
    for (uint64_t i = 0; i < n; ++i) {
      EXPECT_TRUE(filter.MayContain(Mix(i))) << "n=" << n << " key=" << i;
    }
  }
}

TEST(BloomFilterTest, TinyKeyCountsStaySingleWord) {
  // The old sizing loop degenerated near zero; the filter must stay a
  // well-formed single word for 0..4 expected keys.
  for (size_t expected : {0u, 1u, 2u, 3u, 4u}) {
    BloomFilter filter(expected);
    EXPECT_EQ(filter.num_words(), 1u) << "expected=" << expected;
  }
  // Doubling kicks in past ~4 keys/word.
  EXPECT_EQ(BloomFilter(5).num_words(), 2u);
  EXPECT_EQ(BloomFilter(16).num_words(), 4u);
}

TEST(BloomFilterTest, WordCountCappedOnMiscardinality) {
  // A wildly wrong cardinality estimate must cap the allocation instead
  // of exploding; FPR degrades gracefully past the cap.
  BloomFilter huge(~size_t{0});
  EXPECT_EQ(huge.num_words(), BloomFilter::kMaxWords);
  huge.Insert(Mix(1));
  EXPECT_TRUE(huge.MayContain(Mix(1)));
}

TEST(BloomFilterTest, MergeFromCombinesPartialFilters) {
  // Morsel-parallel builds OR per-worker partials of the same size.
  BloomFilter a(1024), b(1024);
  for (uint64_t i = 0; i < 512; ++i) a.Insert(Mix(i));
  for (uint64_t i = 512; i < 1024; ++i) b.Insert(Mix(i));
  a.MergeFrom(b);
  EXPECT_EQ(a.num_inserted(), 1024u);
  for (uint64_t i = 0; i < 1024; ++i) {
    EXPECT_TRUE(a.MayContain(Mix(i))) << "key=" << i;
  }
  // Size mismatch is a caller bug; the merge must be a safe no-op.
  BloomFilter small(4);
  const size_t before = a.num_inserted();
  a.MergeFrom(small);
  EXPECT_EQ(a.num_inserted(), before);
}

TEST(BloomFilterTest, FalsePositiveRateAtDesignPoint) {
  // At ~4 keys per 64-bit word (~16 bits/key) with three bits per key the
  // expected FPR is well under a few percent. Measure with disjoint
  // insert/probe key spaces.
  constexpr uint64_t kKeys = 4096;
  constexpr uint64_t kProbes = 100000;
  BloomFilter filter(kKeys);
  for (uint64_t i = 0; i < kKeys; ++i) filter.Insert(Mix(i));
  uint64_t false_positives = 0;
  for (uint64_t i = 0; i < kProbes; ++i) {
    if (filter.MayContain(Mix(kKeys + 1000000 + i))) ++false_positives;
  }
  const double fpr =
      static_cast<double>(false_positives) / static_cast<double>(kProbes);
  EXPECT_LT(fpr, 0.03) << "false positives: " << false_positives;
}

}  // namespace
}  // namespace iceberg
