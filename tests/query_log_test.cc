// Flight-recorder tests: ring overwrite, one record per retry attempt
// (reconciling with the governor lifecycle), scope suppression, chaos
// annotations, SLO accounting, slow-capture arming and retention, JSONL
// export, and an eight-session storm (tsan preset).

#include "src/obs/query_log.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "src/obs/metrics.h"
#include "src/server/chaos.h"
#include "src/server/session.h"
#include "tests/json_check.h"

namespace iceberg {
namespace {

using iceberg::testing::IsValidJson;

/// Restores the emission flag and slow threshold no matter how a test
/// exits, and clears the global ring so tests see only their own records.
struct QueryLogGuard {
  QueryLogGuard() : was_enabled(QueryLogEnabled()),
                    prev_slow_us(SlowQueryThresholdUs()) {
    SetQueryLogEnabled(true);
    SetSlowQueryThresholdUs(0);
    QueryLog::Global().Clear();
  }
  ~QueryLogGuard() {
    SetQueryLogEnabled(was_enabled);
    SetSlowQueryThresholdUs(prev_slow_us);
    QueryLog::Global().Clear();
  }
  bool was_enabled;
  uint64_t prev_slow_us;
};

struct ChaosGuard {
  explicit ChaosGuard(ChaosConfig config) { ChaosSchedule::SetGlobal(config); }
  ~ChaosGuard() { ChaosSchedule::SetGlobal(ChaosConfig{}); }
};

QueryRecord MakeRecord(uint64_t query_id, uint64_t latency_us,
                       uint64_t shape_hash = 0) {
  QueryRecord rec;
  rec.query_id = query_id;
  rec.latency_us = latency_us;
  rec.shape_hash = shape_hash;
  rec.shape = shape_hash != 0 ? "select ?" : "";
  return rec;
}

Database MakeDb() {
  Database db;
  EXPECT_TRUE(db.CreateTable("object", Schema({{"id", DataType::kInt64},
                                               {"x", DataType::kInt64},
                                               {"y", DataType::kInt64}}))
                  .ok());
  EXPECT_TRUE(db.DeclareKey("object", {"id"}).ok());
  for (int64_t i = 0; i < 24; ++i) {
    EXPECT_TRUE(db.Insert("object", {Value::Int(i), Value::Int((i * 13) % 7),
                                     Value::Int((i * 5) % 11)})
                    .ok());
  }
  return db;
}

const char* kSkylineSql =
    "SELECT L.id, COUNT(*) FROM object L, object R "
    "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
    "GROUP BY L.id HAVING COUNT(*) <= 50";

ServerConfig TestServerConfig() {
  ServerConfig config;
  config.admission.max_concurrent = 4;
  config.admission.max_queue_depth = 64;
  config.admission.queue_timeout_ms = 10000;
  config.retry.max_attempts = 6;
  config.retry.initial_backoff_ms = 1;
  config.retry.max_backoff_ms = 2;
  return config;
}

// ---------------------------------------------------------------------------
// Ring mechanics (private instances; the global enable flag still gates)
// ---------------------------------------------------------------------------

TEST(QueryLogRingTest, CapacityRoundsUpToShardMultiple) {
  QueryLogGuard guard;
  QueryLog log(/*capacity=*/13);
  EXPECT_EQ(log.capacity() % 8, 0u);
  EXPECT_GE(log.capacity(), 13u);
}

TEST(QueryLogRingTest, OverwritesOldestAtCapacity) {
  QueryLogGuard guard;
  QueryLog log(/*capacity=*/16);
  ASSERT_EQ(log.capacity(), 16u);
  Counter* overwrites = ICEBERG_COUNTER("query_log.overwrites");
  uint64_t overwrites_before = overwrites->value();

  for (uint64_t i = 0; i < 40; ++i) {
    uint64_t handle = log.Record(MakeRecord(/*query_id=*/i + 1,
                                            /*latency_us=*/i));
    EXPECT_EQ(handle, i + 1);  // seq + 1
  }

  std::vector<QueryRecord> tail = log.Tail();
  ASSERT_EQ(tail.size(), 16u);
  // Oldest-first, and exactly the last 16 seqs survive.
  for (size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].seq, 24 + i);
    EXPECT_EQ(tail[i].query_id, 24 + i + 1);
  }
  EXPECT_EQ(overwrites->value() - overwrites_before, 40u - 16u);

  std::vector<QueryRecord> last5 = log.Tail(5);
  ASSERT_EQ(last5.size(), 5u);
  EXPECT_EQ(last5.front().seq, 35u);
  EXPECT_EQ(last5.back().seq, 39u);
}

TEST(QueryLogRingTest, DisabledLogRecordsNothing) {
  QueryLogGuard guard;
  QueryLog log(/*capacity=*/16);
  SetQueryLogEnabled(false);
  EXPECT_EQ(log.Record(MakeRecord(1, 10)), 0u);
  SetQueryLogEnabled(true);
  EXPECT_TRUE(log.Tail().empty());
  EXPECT_NE(log.Record(MakeRecord(2, 10)), 0u);
  EXPECT_EQ(log.Tail().size(), 1u);
}

TEST(QueryLogRingTest, ClearEmptiesEverything) {
  QueryLogGuard guard;
  QueryLog log(/*capacity=*/16);
  log.Record(MakeRecord(1, 10, /*shape_hash=*/7));
  log.Clear();
  EXPECT_TRUE(log.Tail().empty());
  EXPECT_EQ(log.captures_held(), 0u);
}

// ---------------------------------------------------------------------------
// Slow filter and capture retention
// ---------------------------------------------------------------------------

TEST(QueryLogSlowTest, ThresholdBoundaryIsInclusive) {
  QueryLogGuard guard;
  QueryLog log(/*capacity=*/16);
  log.Record(MakeRecord(1, /*latency_us=*/99));
  log.Record(MakeRecord(2, /*latency_us=*/100));
  log.Record(MakeRecord(3, /*latency_us=*/101));

  std::vector<QueryRecord> slow = log.Slow(/*n=*/0, /*threshold_us=*/100);
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].query_id, 2u);
  EXPECT_EQ(slow[1].query_id, 3u);
}

TEST(QueryLogSlowTest, ZeroThresholdFallsBackToCapturedRecords) {
  QueryLogGuard guard;  // global slow threshold forced to 0
  QueryLog log(/*capacity=*/16);
  QueryRecord with_capture = MakeRecord(1, 5);
  with_capture.slow_capture =
      std::make_shared<const std::string>("=== slow query capture ===\n");
  log.Record(std::move(with_capture));
  log.Record(MakeRecord(2, 500));

  std::vector<QueryRecord> slow = log.Slow();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].query_id, 1u);
  ASSERT_NE(slow[0].slow_capture, nullptr);
}

TEST(QueryLogSlowTest, CaptureRetentionBoundDropsOldestPayloads) {
  QueryLogGuard guard;
  QueryLog log(/*capacity=*/64);  // ring larger than the capture bound (16)
  for (uint64_t i = 0; i < 20; ++i) {
    QueryRecord rec = MakeRecord(i + 1, 1000 + i);
    rec.slow_capture = std::make_shared<const std::string>(
        "capture #" + std::to_string(i + 1));
    log.Record(std::move(rec));
  }
  EXPECT_EQ(log.captures_held(), 16u);

  std::vector<QueryRecord> tail = log.Tail();
  ASSERT_EQ(tail.size(), 20u);
  size_t with_payload = 0;
  for (const QueryRecord& rec : tail) {
    if (rec.slow_capture != nullptr) ++with_payload;
    // Eviction strips only the payload; the scalars survive in the ring.
    EXPECT_EQ(rec.latency_us, 1000 + rec.seq);
  }
  EXPECT_EQ(with_payload, 16u);
  // FIFO: the four oldest captures are the ones gone.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tail[i].slow_capture, nullptr) << "seq " << tail[i].seq;
  }
}

// ---------------------------------------------------------------------------
// SLO accounting
// ---------------------------------------------------------------------------

TEST(QueryLogSloTest, DefaultAndPerShapeThresholds) {
  QueryLogGuard guard;
  QueryLog log(/*capacity=*/32);
  Counter* violations = ICEBERG_COUNTER("slo.violations");
  uint64_t violations_before = violations->value();

  log.SetDefaultSloUs(100);
  log.Record(MakeRecord(1, /*latency_us=*/50, /*shape_hash=*/0xAB));
  log.Record(MakeRecord(2, /*latency_us=*/150, /*shape_hash=*/0xAB));
  // Per-shape override wins over the default: 150us is fine under 1000us.
  log.SetShapeSloUs(0xCD, 1000);
  log.Record(MakeRecord(3, /*latency_us=*/150, /*shape_hash=*/0xCD));

  std::vector<QueryRecord> tail = log.Tail();
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_FALSE(tail[0].slo_violated);
  EXPECT_TRUE(tail[1].slo_violated);
  EXPECT_FALSE(tail[2].slo_violated);
  EXPECT_EQ(violations->value() - violations_before, 1u);

  std::string table = log.RenderShapeTable();
  EXPECT_NE(table.find("00000000000000ab"), std::string::npos);
  EXPECT_NE(table.find("00000000000000cd"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON / JSONL export
// ---------------------------------------------------------------------------

TEST(QueryLogJsonTest, RecordJsonIsValidWithHostileStrings) {
  QueryRecord rec = MakeRecord(7, 123, /*shape_hash=*/0x1234);
  rec.status = "CANCELLED";
  rec.error = "chaos \"quoted\"\\back\nslash";
  rec.retryable = true;
  rec.will_retry = true;
  rec.plan_provenance = "hit";
  rec.slow_capture = std::make_shared<const std::string>(
      "tree with \"quotes\"\nand newlines");
  std::string json = QueryLog::ToJson(rec);
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"query_id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"shape_hash\":\"0000000000001234\""),
            std::string::npos);
  EXPECT_NE(json.find("\"will_retry\":true"), std::string::npos);

  rec.slow_capture = nullptr;
  std::string no_capture = QueryLog::ToJson(rec);
  EXPECT_TRUE(IsValidJson(no_capture)) << no_capture;
  EXPECT_NE(no_capture.find("\"slow_capture\":null"), std::string::npos);
}

TEST(QueryLogJsonTest, DumpJsonlRoundTrips) {
  QueryLogGuard guard;
  QueryLog log(/*capacity=*/16);
  for (uint64_t i = 0; i < 5; ++i) {
    QueryRecord rec = MakeRecord(i + 1, 10 * (i + 1), /*shape_hash=*/i);
    rec.error = "err\n#" + std::to_string(i);
    log.Record(std::move(rec));
  }
  std::string path = ::testing::TempDir() + "querylog_roundtrip.jsonl";
  ASSERT_TRUE(log.DumpJsonl(path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(IsValidJson(line)) << line;
    EXPECT_NE(line.find("\"query_id\":" + std::to_string(lines + 1)),
              std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, log.Tail().size());
  std::remove(path.c_str());
}

TEST(QueryLogJsonTest, RenderTableMarksRetriesAndCaptures) {
  QueryRecord retrying = MakeRecord(1, 10);
  retrying.status = "OVERLOADED";
  retrying.will_retry = true;
  QueryRecord captured = MakeRecord(2, 20);
  captured.slow_capture = std::make_shared<const std::string>("tree");
  std::string table = QueryLog::RenderTable({retrying, captured});
  EXPECT_NE(table.find("OVERLOADED*"), std::string::npos);
  EXPECT_NE(table.find("[captured]"), std::string::npos);
  EXPECT_NE(QueryLog::RenderTable({}).find("(no records)"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Emission wiring: direct Database calls
// ---------------------------------------------------------------------------

TEST(QueryLogEmissionTest, DirectDatabaseCallEmitsOneRecordPerEngine) {
  QueryLogGuard guard;
  Database db = MakeDb();

  ExecStats stats;
  Result<TablePtr> base = db.Query(kSkylineSql, ExecOptions(), &stats);
  ASSERT_TRUE(base.ok());
  IcebergReport report;
  Result<TablePtr> ice = db.QueryIceberg(kSkylineSql, IcebergOptions(),
                                         &report);
  ASSERT_TRUE(ice.ok());

  std::vector<QueryRecord> tail = QueryLog::Global().Tail();
  ASSERT_EQ(tail.size(), 2u);
  const QueryRecord& b = tail[0];
  const QueryRecord& i = tail[1];
  EXPECT_FALSE(b.iceberg);
  EXPECT_TRUE(i.iceberg);
  for (const QueryRecord* rec : {&b, &i}) {
    EXPECT_EQ(rec->session_id, 0u) << "direct calls have no session";
    EXPECT_EQ(rec->attempt, 1u);
    EXPECT_EQ(rec->status, "OK");
    EXPECT_EQ(rec->rows_returned, (*base)->num_rows());
    EXPECT_NE(rec->shape_hash, 0u);
    EXPECT_GT(rec->latency_us, 0u);
  }
  EXPECT_EQ(b.shape_hash, i.shape_hash);
  // The baseline record reconciles with the caller's ExecStats block...
  EXPECT_EQ(b.transfer_passes, stats.transfer_passes);
  EXPECT_EQ(b.transfer_rows_eliminated, stats.transfer_rows_eliminated);
  // ...and the iceberg record with the report (executor + NLJP shares).
  EXPECT_EQ(i.transfer_passes, report.exec_stats.transfer_passes +
                                   report.nljp_stats.transfer_passes);
  EXPECT_EQ(i.transfer_filters_built,
            report.exec_stats.transfer_filters_built +
                report.nljp_stats.transfer_filters_built);
  EXPECT_EQ(i.transfer_rows_eliminated,
            report.exec_stats.transfer_rows_eliminated +
                report.nljp_stats.transfer_rows_eliminated);
  EXPECT_EQ(i.plan_provenance, report.plan_provenance);
}

TEST(QueryLogEmissionTest, ScopeSuppressesDatabaseEmission) {
  QueryLogGuard guard;
  Database db = MakeDb();
  {
    QueryLogScope suppress;
    EXPECT_TRUE(QueryLogScope::Active());
    ASSERT_TRUE(db.Query(kSkylineSql).ok());
    ASSERT_TRUE(db.QueryIceberg(kSkylineSql).ok());
  }
  EXPECT_FALSE(QueryLogScope::Active());
  EXPECT_TRUE(QueryLog::Global().Tail().empty());
}

TEST(QueryLogEmissionTest, ChickenBitSilencesServedQueries) {
  QueryLogGuard guard;
  SetQueryLogEnabled(false);
  Database db = MakeDb();
  IcebergServer server(&db, TestServerConfig());
  auto session = server.OpenSession();
  ASSERT_TRUE(session->Execute(kSkylineSql).status.ok());
  ASSERT_TRUE(session->ExecuteBaseline(kSkylineSql).status.ok());
  EXPECT_TRUE(QueryLog::Global().Tail().empty());
}

// ---------------------------------------------------------------------------
// Emission wiring: served queries (sessions, retries, chaos)
// ---------------------------------------------------------------------------

TEST(QueryLogEmissionTest, ServedQueryEmitsOneRecordReconcilingWithOutcome) {
  QueryLogGuard guard;
  Database db = MakeDb();
  IcebergServer server(&db, TestServerConfig());
  auto session = server.OpenSession();

  QueryOutcome outcome = session->Execute(kSkylineSql);
  ASSERT_TRUE(outcome.status.ok());
  ASSERT_EQ(outcome.attempts, 1);

  std::vector<QueryRecord> tail = QueryLog::Global().Tail();
  ASSERT_EQ(tail.size(), 1u) << "session wraps the Database call: one record";
  const QueryRecord& rec = tail[0];
  EXPECT_EQ(rec.session_id, session->id());
  EXPECT_EQ(rec.attempt, 1u);
  EXPECT_TRUE(rec.iceberg);
  EXPECT_EQ(rec.status, "OK");
  EXPECT_FALSE(rec.will_retry);
  EXPECT_EQ(rec.shape_hash, outcome.shape_hash);
  EXPECT_EQ(rec.rows_returned, outcome.table->num_rows());
  EXPECT_EQ(rec.governor_verdict, "ok");
  EXPECT_GT(rec.governor_checks, 0u);
  // Transfer fields reconcile with the outcome's own report — the same
  // blocks EXPLAIN ANALYZE renders for this statement.
  EXPECT_EQ(rec.transfer_passes,
            outcome.report.exec_stats.transfer_passes +
                outcome.report.nljp_stats.transfer_passes);
  EXPECT_EQ(rec.transfer_rows_eliminated,
            outcome.report.exec_stats.transfer_rows_eliminated +
                outcome.report.nljp_stats.transfer_rows_eliminated);
  EXPECT_EQ(rec.plan_provenance, outcome.report.plan_provenance);
}

TEST(QueryLogEmissionTest, OneRecordPerRetryAttemptMatchingGovernorDelta) {
  QueryLogGuard guard;
  Database db = MakeDb();
  IcebergServer server(&db, TestServerConfig());
  // Heavy retryable cancels: most statements need several attempts.
  ChaosConfig chaos;
  chaos.seed = 17;
  chaos.cancel_every = 300;
  ChaosGuard chaos_guard(chaos);

  Counter* governor_queries = ICEBERG_COUNTER("governor.queries");
  uint64_t governors_before = governor_queries->value();

  auto session = server.OpenSession();
  int total_attempts = 0;
  int retried_statements = 0;
  for (int i = 0; i < 12; ++i) {
    QueryOutcome outcome = session->Execute(kSkylineSql);
    total_attempts += outcome.attempts;
    if (outcome.attempts > 1) ++retried_statements;
  }
  ASSERT_GT(retried_statements, 0)
      << "chaos rate too low: no statement retried, test proves nothing";

  std::vector<QueryRecord> tail = QueryLog::Global().Tail();
  ASSERT_EQ(tail.size(), static_cast<size_t>(total_attempts))
      << "exactly one record per attempt";
  // Every admitted attempt constructs exactly one governor, so the
  // governor.queries delta must equal the record count (a single
  // sequential session can never be shed pre-admission, and pre-admission
  // sheds are the one record kind without a governor).
  EXPECT_EQ(governor_queries->value() - governors_before,
            static_cast<uint64_t>(total_attempts));

  // Per-statement invariants: shared query_id, 1-based attempt numbers,
  // will_retry on all but the last, retry_cause echoing the prior status.
  for (size_t i = 0; i < tail.size(); ++i) {
    const QueryRecord& rec = tail[i];
    if (rec.attempt > 1) {
      ASSERT_GT(i, 0u);
      const QueryRecord& prev = tail[i - 1];
      EXPECT_EQ(prev.query_id, rec.query_id);
      EXPECT_EQ(prev.attempt, rec.attempt - 1);
      EXPECT_TRUE(prev.will_retry);
      EXPECT_EQ(rec.retry_cause, prev.status);
      EXPECT_NE(rec.retry_cause, "OK");
    }
  }
}

TEST(QueryLogEmissionTest, ChaosInjectionsReconcileWithGlobalCounters) {
  QueryLogGuard guard;
  Database db = MakeDb();
  IcebergServer server(&db, TestServerConfig());
  ChaosConfig chaos;
  chaos.seed = 5;
  chaos.delay_every = 50;
  chaos.delay_us = 1;
  chaos.cancel_every = 500;
  ChaosGuard chaos_guard(chaos);

  uint64_t delays_before = ICEBERG_COUNTER("chaos.injected_delays")->value();
  uint64_t cancels_before =
      ICEBERG_COUNTER("chaos.injected_cancels")->value();

  auto session = server.OpenSession();
  for (int i = 0; i < 6; ++i) session->Execute(kSkylineSql);

  uint64_t rec_delays = 0;
  uint64_t rec_cancels = 0;
  bool any_annotation = false;
  for (const QueryRecord& rec : QueryLog::Global().Tail()) {
    rec_delays += rec.chaos_delays;
    rec_cancels += rec.chaos_cancels;
    if (rec.chaos_delays + rec.chaos_shed_storms + rec.chaos_cancels +
            rec.chaos_alloc_failures >
        0) {
      any_annotation = true;
    }
  }
  ASSERT_TRUE(any_annotation) << "chaos rate too low to annotate any record";
  // Per-record attribution is complete: summing the annotations recovers
  // the global chaos counter deltas exactly.
  EXPECT_EQ(rec_delays,
            ICEBERG_COUNTER("chaos.injected_delays")->value() -
                delays_before);
  EXPECT_EQ(rec_cancels,
            ICEBERG_COUNTER("chaos.injected_cancels")->value() -
                cancels_before);
}

TEST(QueryLogEmissionTest, SlowCaptureArmsAtThresholdBothEngines) {
  QueryLogGuard guard;
  Database db = MakeDb();
  IcebergServer server(&db, TestServerConfig());
  auto session = server.OpenSession();

  // Armed at 1us: everything is slow; both engines must attach a capture.
  SetSlowQueryThresholdUs(1);
  ASSERT_TRUE(session->Execute(kSkylineSql).status.ok());
  ASSERT_TRUE(session->ExecuteBaseline(kSkylineSql).status.ok());
  // Disarmed via an unreachable threshold: no capture.
  SetSlowQueryThresholdUs(uint64_t{1} << 60);
  ASSERT_TRUE(session->Execute(kSkylineSql).status.ok());
  SetSlowQueryThresholdUs(0);

  std::vector<QueryRecord> tail = QueryLog::Global().Tail();
  ASSERT_EQ(tail.size(), 3u);
  for (size_t i = 0; i < 2; ++i) {
    ASSERT_NE(tail[i].slow_capture, nullptr) << "record " << i;
    EXPECT_NE(tail[i].slow_capture->find("=== slow query capture ==="),
              std::string::npos);
    // The capture embeds the per-operator analyze tree, not a plain plan.
    EXPECT_NE(tail[i].slow_capture->find("actual"), std::string::npos);
  }
  EXPECT_EQ(tail[2].slow_capture, nullptr);
  EXPECT_EQ(QueryLog::Global().Slow().size(), 2u);
}

TEST(QueryLogStormTest, EightSessionsReconcileUnderChaos) {
  QueryLogGuard guard;
  Database db = MakeDb();
  ServerConfig config = TestServerConfig();
  config.admission.max_concurrent = 2;
  IcebergServer server(&db, config);
  ChaosConfig chaos;
  chaos.seed = 99;
  chaos.cancel_every = 1500;
  chaos.delay_every = 400;
  chaos.delay_us = 2;
  ChaosGuard chaos_guard(chaos);

  Counter* records_counter = ICEBERG_COUNTER("query_log.records");
  uint64_t records_before = records_counter->value();

  constexpr int kSessions = 8;
  constexpr int kQueriesPerSession = 6;
  std::atomic<int> total_attempts{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int s = 0; s < kSessions; ++s) {
    workers.emplace_back([&, s]() {
      auto session = server.OpenSession();
      for (int i = 0; i < kQueriesPerSession; ++i) {
        // Alternate engines so both paths run concurrently.
        QueryOutcome outcome = (s + i) % 2 == 0
                                   ? session->Execute(kSkylineSql)
                                   : session->ExecuteBaseline(kSkylineSql);
        total_attempts.fetch_add(outcome.attempts);
        if (!outcome.status.ok() && !outcome.status.IsRetryable()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(failures.load(), 0) << "only clean sheds are acceptable";
  // One record per attempt, across all sessions, exactly.
  EXPECT_EQ(records_counter->value() - records_before,
            static_cast<uint64_t>(total_attempts.load()));
  std::vector<QueryRecord> tail = QueryLog::Global().Tail();
  ASSERT_EQ(tail.size(), static_cast<size_t>(total_attempts.load()));
  for (const QueryRecord& rec : tail) {
    EXPECT_NE(rec.query_id, 0u);
    EXPECT_GE(rec.session_id, 1u);
    EXPECT_GE(rec.attempt, 1u);
    EXPECT_NE(rec.shape_hash, 0u);
    EXPECT_FALSE(rec.status.empty());
  }
  // The per-shape table saw every attempt of the (single) shape.
  std::string shapes = QueryLog::Global().RenderShapeTable();
  EXPECT_NE(shapes.find("select l.id"), std::string::npos);
}

}  // namespace
}  // namespace iceberg
