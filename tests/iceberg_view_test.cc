// Tests for the two-sided iceberg analysis (IcebergView): conjunct
// classification, J/G attribute extraction, equivalence augmentation,
// side-local FDs, and candidate-partition enumeration.

#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "src/rewrite/equality_inference.h"
#include "src/rewrite/iceberg_view.h"

namespace iceberg {
namespace {

class ViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        db_.CreateTable("product", Schema({{"id", DataType::kInt64},
                                           {"category", DataType::kInt64},
                                           {"attr", DataType::kString},
                                           {"val", DataType::kInt64}}))
            .ok());
    ASSERT_TRUE(db_.DeclareKey("product", {"id", "attr"}).ok());
    ASSERT_TRUE(db_.DeclareFd("product", {"id"}, {"category"}).ok());
  }

  Result<IcebergView> Analyze(const std::string& sql,
                              std::vector<size_t> left,
                              std::vector<size_t> right) {
    ICEBERG_ASSIGN_OR_RETURN(block_, db_.Prepare(sql));
    TablePartition part;
    part.left = std::move(left);
    part.right = std::move(right);
    return AnalyzeIceberg(block_, part);
  }

  Database db_;
  QueryBlock block_;
};

constexpr char kComplexSql[] =
    "SELECT S1.id, S1.attr, S2.attr, COUNT(*) "
    "FROM product S1, product S2, product T1, product T2 "
    "WHERE S1.id = S2.id AND T1.id = T2.id "
    "AND S1.category = T1.category "
    "AND T1.attr = S1.attr AND T2.attr = S2.attr "
    "AND T1.val > S1.val AND T2.val > S2.val "
    "GROUP BY S1.id, S1.attr, S2.attr HAVING COUNT(*) >= 10";

TEST_F(ViewTest, ConjunctClassificationS1T1) {
  // Partition {S1,T1} | {S2,T2} per Example 13.
  auto view = Analyze(kComplexSql, {0, 2}, {1, 3});
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  // Intra-left: category eq, attr eq, val ineq. Intra-right: t2/s2 attr eq
  // and val ineq. Cross: the id equalities.
  EXPECT_EQ(view->left_only.size(), 3u);
  EXPECT_EQ(view->right_only.size(), 2u);
  EXPECT_EQ(view->theta.size(), 2u);
  // J_L and J_R are the id columns.
  EXPECT_EQ(view->NamesOf(view->jl_offsets),
            MakeAttrSet({"s1.id", "t1.id"}));
  EXPECT_EQ(view->NamesOf(view->jr_offsets),
            MakeAttrSet({"s2.id", "t2.id"}));
  EXPECT_EQ(view->jl_eq_offsets, view->jl_offsets);  // all equalities
}

TEST_F(ViewTest, GroupAttributeSplitAndAugmentation) {
  auto view = Analyze(kComplexSql, {1, 3}, {0, 2});  // L = {S2, T2}
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->NamesOf(view->gl_offsets), MakeAttrSet({"s2.attr"}));
  EXPECT_EQ(view->NamesOf(view->gr_offsets),
            MakeAttrSet({"s1.id", "s1.attr"}));
  // Augmentation borrows s2.id (== s1.id) and t2.attr (== s2.attr) into
  // the left side.
  AttrSet aug = view->NamesOf(view->gl_aug_offsets);
  EXPECT_TRUE(aug.count("s2.id") > 0) << AttrSetToString(aug);
  EXPECT_TRUE(aug.count("s2.attr") > 0);
}

TEST_F(ViewTest, SideFdsIncludeLocalEqualities) {
  auto view = Analyze(kComplexSql, {0, 2}, {1, 3});
  ASSERT_TRUE(view.ok());
  FdSet left = view->LeftFds();
  // t1.attr = s1.attr is intra-left, so s1.id + s1.attr determine t1.attr.
  EXPECT_TRUE(left.Determines(MakeAttrSet({"s1.id", "s1.attr"}),
                              MakeAttrSet({"t1.attr"})));
  // The cross-side equality s1.id = s2.id must NOT leak into left FDs.
  EXPECT_FALSE(left.Determines(MakeAttrSet({"s1.id"}),
                               MakeAttrSet({"s2.id"})));
}

TEST_F(ViewTest, ApplicableTo) {
  auto view = Analyze(kComplexSql, {0, 1}, {2, 3});
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->ApplicableTo(block_.having, true));   // COUNT(*)
  EXPECT_TRUE(view->ApplicableTo(block_.having, false));  // both sides
  ExprPtr s1_ref = block_.group_by[0];                    // S1.id
  EXPECT_TRUE(view->ApplicableTo(s1_ref, true));
  EXPECT_FALSE(view->ApplicableTo(s1_ref, false));
}

TEST_F(ViewTest, GroupDeterminesLeftViaEqualities) {
  auto view = Analyze(kComplexSql, {0, 1}, {2, 3});  // L = {S1, S2}
  ASSERT_TRUE(view.ok());
  // {s1.id, s1.attr, s2.attr} + s1.id=s2.id determine both tuples.
  EXPECT_TRUE(view->GroupDeterminesLeft());
  EXPECT_FALSE(view->JoinDeterminesLeft());  // category/attr/val are not keys
}

TEST_F(ViewTest, BadPartitionsRejected) {
  EXPECT_FALSE(Analyze(kComplexSql, {0, 0}, {1, 2}).ok());   // duplicate
  EXPECT_FALSE(Analyze(kComplexSql, {0, 1}, {2}).ok());      // uncovered
  EXPECT_FALSE(Analyze(kComplexSql, {0, 1, 9}, {2, 3}).ok());  // bad index
}

TEST_F(ViewTest, CandidatePartitionsOrderAndCoverage) {
  block_ = *db_.Prepare(kComplexSql);
  std::vector<TablePartition> partitions = CandidatePartitions(block_);
  ASSERT_FALSE(partitions.empty());
  // First candidate: minimal left covering the GROUP BY tables {S1, S2}.
  EXPECT_EQ(partitions[0].left, (std::vector<size_t>{0, 1}));
  // Singletons must be present.
  size_t singletons = 0;
  for (const TablePartition& p : partitions) {
    if (p.left.size() == 1) ++singletons;
    // Every candidate is a disjoint cover.
    EXPECT_EQ(p.left.size() + p.right.size(), block_.tables.size());
  }
  EXPECT_EQ(singletons, 4u);
}

TEST_F(ViewTest, TwoTableQueryHasTwoCandidates) {
  ASSERT_TRUE(db_.CreateTable("o", Schema({{"id", DataType::kInt64},
                                           {"x", DataType::kInt64}}))
                  .ok());
  QueryBlock block = *db_.Prepare(
      "SELECT a.id, COUNT(*) FROM o a, o b WHERE a.x < b.x GROUP BY a.id "
      "HAVING COUNT(*) <= 3");
  std::vector<TablePartition> partitions = CandidatePartitions(block);
  EXPECT_EQ(partitions.size(), 2u);
}

TEST_F(ViewTest, HavingMonotonicityInstanceSumCheck) {
  // SUM over a column that is non-negative in the instance is classified
  // monotone; after inserting a negative value it must become kNeither.
  ASSERT_TRUE(db_.CreateTable("m", Schema({{"g", DataType::kInt64},
                                           {"k", DataType::kInt64},
                                           {"v", DataType::kInt64}}))
                  .ok());
  ASSERT_TRUE(db_.Insert("m", {Value::Int(1), Value::Int(1), Value::Int(5)})
                  .ok());
  const char* sql =
      "SELECT a.g, SUM(a.v) FROM m a, m b WHERE a.k = b.k GROUP BY a.g "
      "HAVING SUM(a.v) >= 10";
  {
    QueryBlock block = *db_.Prepare(sql);
    TablePartition part{{0}, {1}};
    IcebergView view = *AnalyzeIceberg(block, part);
    EXPECT_EQ(view.HavingMonotonicity(), Monotonicity::kMonotone);
  }
  ASSERT_TRUE(db_.Insert("m", {Value::Int(1), Value::Int(1), Value::Int(-5)})
                  .ok());
  {
    QueryBlock block = *db_.Prepare(sql);
    TablePartition part{{0}, {1}};
    IcebergView view = *AnalyzeIceberg(block, part);
    EXPECT_EQ(view.HavingMonotonicity(), Monotonicity::kNeither);
  }
}

TEST_F(ViewTest, RemapExprRejectsUnmappedOffsets) {
  block_ = *db_.Prepare(kComplexSql);
  std::map<size_t, size_t> empty_map;
  Result<ExprPtr> remapped = RemapExpr(block_.group_by[0], empty_map);
  EXPECT_FALSE(remapped.ok());
}

TEST_F(ViewTest, MakeSubBlockReassignsOffsets) {
  block_ = *db_.Prepare(kComplexSql);
  std::map<size_t, size_t> offset_map;
  Result<QueryBlock> sub = MakeSubBlock(block_, {2, 3}, {}, &offset_map);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->tables.size(), 2u);
  EXPECT_EQ(sub->tables[0].offset, 0u);
  EXPECT_EQ(sub->tables[1].offset, 4u);
  // T1's columns (orig offsets 8..11) map to 0..3.
  EXPECT_EQ(offset_map.at(8), 0u);
  EXPECT_EQ(offset_map.at(11), 3u);
}

TEST_F(ViewTest, EqualityInferenceRequiresSameTable) {
  // Two different tables with an FD of the same column names must not
  // propagate equalities across each other.
  ASSERT_TRUE(db_.CreateTable("p2", Schema({{"id", DataType::kInt64},
                                            {"category", DataType::kInt64}}))
                  .ok());
  ASSERT_TRUE(db_.DeclareFd("p2", {"id"}, {"category"}).ok());
  QueryBlock block = *db_.Prepare(
      "SELECT a.id, COUNT(*) FROM product a, p2 b WHERE a.id = b.id "
      "GROUP BY a.id HAVING COUNT(*) >= 1");
  size_t derived = InferDerivedEqualities(&block);
  EXPECT_EQ(derived, 0u);
}

TEST_F(ViewTest, EqualityInferenceFixpointChains) {
  // a.id = b.id and b.id = c.id must give category equalities across all
  // three instances (transitive fixpoint).
  QueryBlock block = *db_.Prepare(
      "SELECT a.id, COUNT(*) FROM product a, product b, product c "
      "WHERE a.id = b.id AND b.id = c.id "
      "GROUP BY a.id HAVING COUNT(*) >= 1");
  size_t derived = InferDerivedEqualities(&block);
  EXPECT_EQ(derived, 3u);  // all pairs among {a,b,c}.category
}

}  // namespace
}  // namespace iceberg
