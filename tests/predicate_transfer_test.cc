// Differential suite for the predicate-transfer graph (fixpoint Bloom
// propagation across every equi-join edge, src/exec/transfer_graph.h):
//
//  - transfer on vs off must be byte-identical on every workload query,
//    across both engines, 1 and 8 threads, and both vectorize states
//    (Bloom false positives only admit rows the real join predicates then
//    reject — soundness is one-sided);
//  - cyclic join graphs must reach a fixpoint under the pass cap;
//  - governor pressure must degrade to fewer passes, never to an error or
//    a wrong answer;
//  - a plan-cache hit must replay the captured graph shape and still
//    eliminate the same rows (filters are data-dependent and rebuilt).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/workload_queries.h"
#include "src/engine/database.h"
#include "src/exec/exec_options.h"
#include "src/exec/governor.h"
#include "src/optimizer/iceberg_optimizer.h"
#include "src/storage/table.h"

namespace iceberg {
namespace {

// Restores the process-wide chicken bits on exit (including via assertion
// failures) so this suite composes with the CI env-var sweeps.
struct FlagGuard {
  bool vec = VectorizedExecEnabled();
  bool transfer = PredicateTransferEnabled();
  ~FlagGuard() {
    SetVectorizedExecEnabled(vec);
    SetPredicateTransferEnabled(transfer);
  }
};

void ExpectSameRows(const TablePtr& a, const TablePtr& b,
                    const std::string& ctx) {
  ASSERT_EQ(a->num_rows(), b->num_rows()) << ctx;
  std::vector<Row> ra = a->rows(), rb = b->rows();
  std::sort(ra.begin(), ra.end(), RowLess());
  std::sort(rb.begin(), rb.end(), RowLess());
  for (size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(CompareRows(ra[i], rb[i]), 0) << ctx << " row " << i;
  }
}

// ---------------------------------------------------------------------------
// Workload differential: every query, both engines, both vectorize
// states, 1 and 8 threads
// ---------------------------------------------------------------------------

TEST(PredicateTransferWorkloadTest, OnOffIdenticalResults) {
  FlagGuard guard;
  SetPredicateTransferEnabled(true);
  std::unique_ptr<Database> db = bench::MakeScoreDb(1500);
  for (const bench::NamedQuery& q : bench::Figure1Queries()) {
    for (int threads : {1, 8}) {
      for (bool vec : {true, false}) {
        SetVectorizedExecEnabled(vec);
        const std::string ctx = q.name + " t=" + std::to_string(threads) +
                                (vec ? " vec" : " row");

        ExecOptions on;
        on.num_threads = threads;
        Result<TablePtr> base_on = db->Query(q.sql, on);
        ExecOptions off = on;
        off.predicate_transfer = false;
        Result<TablePtr> base_off = db->Query(q.sql, off);
        ASSERT_TRUE(base_on.ok()) << ctx << ": " << base_on.status().ToString();
        ASSERT_TRUE(base_off.ok())
            << ctx << ": " << base_off.status().ToString();
        ExpectSameRows(*base_on, *base_off, ctx + " baseline");
        if (::testing::Test::HasFatalFailure()) return;

        IcebergOptions ion;
        ion.base_exec.num_threads = threads;
        Result<TablePtr> ice_on = db->QueryIceberg(q.sql, ion);
        IcebergOptions ioff = ion;
        ioff.base_exec.predicate_transfer = false;
        Result<TablePtr> ice_off = db->QueryIceberg(q.sql, ioff);
        ASSERT_TRUE(ice_on.ok()) << ctx << ": " << ice_on.status().ToString();
        ASSERT_TRUE(ice_off.ok()) << ctx << ": " << ice_off.status().ToString();
        ExpectSameRows(*ice_on, *ice_off, ctx + " iceberg");
        ExpectSameRows(*base_on, *ice_on, ctx + " engines");
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
  SetVectorizedExecEnabled(true);
}

TEST(PredicateTransferWorkloadTest, ChickenBitDisablesTransfer) {
  FlagGuard guard;
  std::unique_ptr<Database> db = bench::MakeScoreDb(500);
  const std::string sql = bench::SkybandSql("hits", "hruns", 50);

  SetPredicateTransferEnabled(false);
  ExecOptions exec;  // per-query option stays on; the global bit wins
  ExecStats stats;
  Result<TablePtr> disabled = db->Query(sql, exec, &stats);
  ASSERT_TRUE(disabled.ok()) << disabled.status().ToString();
  EXPECT_EQ(stats.transfer_passes, 0u);
  EXPECT_EQ(stats.transfer_probes, 0u);
  EXPECT_EQ(stats.transfer_filters_built, 0u);

  SetPredicateTransferEnabled(true);
  Result<TablePtr> enabled = db->Query(sql, exec);
  ASSERT_TRUE(enabled.ok()) << enabled.status().ToString();
  ExpectSameRows(*disabled, *enabled, "chicken bit");
}

// ---------------------------------------------------------------------------
// Cross-table elimination and cyclic graphs
// ---------------------------------------------------------------------------

class TransferGraphTest : public ::testing::Test {
 protected:
  // Three relations forming a join *cycle*:
  //   a(x, y) -- a.x = b.x -- b(x, z) -- b.z = c.z -- c(z, y) -- c.y = a.y
  // Key populations are staggered so elimination cascades around the
  // cycle: b covers only x < 50, c covers only even z.
  void SetUp() override {
    SetPredicateTransferEnabled(true);
    ASSERT_TRUE(db_.CreateTable("a", Schema({{"x", DataType::kInt64},
                                             {"y", DataType::kInt64}}))
                    .ok());
    ASSERT_TRUE(db_.CreateTable("b", Schema({{"x", DataType::kInt64},
                                             {"z", DataType::kInt64}}))
                    .ok());
    ASSERT_TRUE(db_.CreateTable("c", Schema({{"z", DataType::kInt64},
                                             {"y", DataType::kInt64}}))
                    .ok());
    for (int64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(db_.Insert("a", {Value::Int(i), Value::Int(i)}).ok());
    }
    for (int64_t i = 0; i < 50; ++i) {
      ASSERT_TRUE(db_.Insert("b", {Value::Int(i), Value::Int(i)}).ok());
    }
    for (int64_t i = 0; i < 100; i += 2) {
      ASSERT_TRUE(db_.Insert("c", {Value::Int(i), Value::Int(i)}).ok());
    }
  }

  FlagGuard guard_;
  Database db_;
};

TEST_F(TransferGraphTest, CyclicGraphReachesFixpointAndEliminates) {
  const std::string sql =
      "SELECT a.x, b.z, c.y FROM a, b, c "
      "WHERE a.x = b.x AND b.z = c.z AND c.y = a.y";
  ExecOptions on;
  ExecStats on_stats;
  Result<TablePtr> with = db_.Query(sql, on, &on_stats);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  // Terminated under the pass cap (the build alternates forward/backward
  // sweeps until no node shrinks).
  EXPECT_GE(on_stats.transfer_passes, 1u);
  EXPECT_LE(on_stats.transfer_passes, 6u);
  // The cycle admits only even x < 50: a loses 75 rows, b loses 25.
  EXPECT_GT(on_stats.transfer_rows_eliminated, 0u);

  ExecOptions off;
  off.predicate_transfer = false;
  ExecStats off_stats;
  Result<TablePtr> without = db_.Query(sql, off, &off_stats);
  ASSERT_TRUE(without.ok()) << without.status().ToString();
  ExpectSameRows(*with, *without, "cyclic graph");
  EXPECT_EQ((*with)->num_rows(), 25u);
  EXPECT_EQ(on_stats.rows_joined, off_stats.rows_joined);
}

TEST_F(TransferGraphTest, ThreadedAndRowPathsAgree) {
  const std::string sql =
      "SELECT a.x, b.z, c.y FROM a, b, c "
      "WHERE a.x = b.x AND b.z = c.z AND c.y = a.y";
  ExecOptions ref;
  ref.predicate_transfer = false;
  Result<TablePtr> expected = db_.Query(sql, ref);
  ASSERT_TRUE(expected.ok());
  for (int threads : {1, 8}) {
    for (bool vec : {true, false}) {
      SetVectorizedExecEnabled(vec);
      ExecOptions exec;
      exec.num_threads = threads;
      Result<TablePtr> got = db_.Query(sql, exec);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSameRows(*expected, *got,
                     "t=" + std::to_string(threads) + (vec ? " vec" : " row"));
    }
  }
  SetVectorizedExecEnabled(true);
}

// Past 8192 rows the builder goes morsel-parallel over the TaskPool:
// local-predicate seeding, per-worker partial Bloom builds merged with
// MergeFrom, and the probe passes all run concurrently. This is the tsan
// target for those paths (the workload tables above are too small to
// trigger them).
TEST(PredicateTransferParallelTest, MorselParallelBuildAndProbeIdentical) {
  FlagGuard guard;
  SetPredicateTransferEnabled(true);
  Database db;
  ASSERT_TRUE(db.CreateTable("fact", Schema({{"k", DataType::kInt64},
                                             {"v", DataType::kInt64}}))
                  .ok());
  ASSERT_TRUE(db.CreateTable("dim", Schema({{"k", DataType::kInt64},
                                            {"f", DataType::kInt64}}))
                  .ok());
  for (int64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(
        db.Insert("fact", {Value::Int(i % 4096), Value::Int(i)}).ok());
    ASSERT_TRUE(db.Insert("dim", {Value::Int(i), Value::Int(i % 100)}).ok());
  }
  // dim's local predicate seeds its selection (parallel), its surviving
  // keys bloom (parallel partial builds), and fact is probed (parallel).
  const std::string sql =
      "SELECT fact.v, dim.f FROM fact, dim "
      "WHERE fact.k = dim.k AND dim.f < 10";

  ExecOptions off;
  off.predicate_transfer = false;
  off.num_threads = 8;
  Result<TablePtr> expected = db.Query(sql, off);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  ExecOptions on;
  on.num_threads = 8;
  ExecStats stats;
  Result<TablePtr> got = db.Query(sql, on, &stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_GT(stats.transfer_rows_eliminated, 0u);
  ExpectSameRows(*expected, *got, "parallel build/probe");
}

// ---------------------------------------------------------------------------
// Governor pressure: degrade passes, never the answer
// ---------------------------------------------------------------------------

TEST_F(TransferGraphTest, GovernorPressureDegradesGracefully) {
  const std::string sql =
      "SELECT a.x, b.z, c.y FROM a, b, c "
      "WHERE a.x = b.x AND b.z = c.z AND c.y = a.y";
  ExecOptions ref;
  ref.predicate_transfer = false;
  Result<TablePtr> expected = db_.Query(sql, ref);
  ASSERT_TRUE(expected.ok());

  // Refuse every transfer-filter reservation: the build stops sweeping
  // before its first filter, keeping only the (sound) local-predicate
  // seeding; execution proceeds and the answer is unchanged.
  GovernorProbe probe;
  probe.on_reserve = [](size_t, size_t, const char* tag) {
    if (std::string(tag) == "transfer-filter") {
      return Status::ResourceExhausted("injected pressure");
    }
    return Status::OK();
  };
  ExecOptions governed;
  governed.governor = std::make_shared<QueryGovernor>(
      QueryGovernor::Limits{}, std::move(probe));
  ExecStats stats;
  Result<TablePtr> degraded = db_.Query(sql, governed, &stats);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(stats.transfer_filters_built, 0u);
  EXPECT_EQ(stats.transfer_rows_eliminated, 0u);
  ExpectSameRows(*expected, *degraded, "governed transfer");
}

// ---------------------------------------------------------------------------
// Plan-cache schedule capture and replay
// ---------------------------------------------------------------------------

TEST_F(TransferGraphTest, PlanTraceCapturesAndReplaysSchedule) {
  const std::string sql =
      "SELECT a.x, b.z, c.y FROM a, b, c "
      "WHERE a.x = b.x AND b.z = c.z AND c.y = a.y";
  // IcebergOptions::None routes through the baseline-fallback executor,
  // the path whose transfer schedule is recorded in the PlanTrace.
  PlanTrace trace;
  IcebergOptions capture = IcebergOptions::None();
  capture.capture = &trace;
  IcebergReport cap_report;
  Result<TablePtr> captured = db_.QueryIceberg(sql, capture, &cap_report);
  ASSERT_TRUE(captured.ok()) << captured.status().ToString();
  ASSERT_TRUE(trace.captured);
  ASSERT_TRUE(trace.transfer_schedule.valid);
  EXPECT_EQ(trace.transfer_schedule.edges.size(), 3u);
  EXPECT_EQ(trace.transfer_schedule.order.size(), 3u);
  EXPECT_GE(trace.transfer_schedule.passes, 1u);

  IcebergOptions replay = IcebergOptions::None();
  replay.replay = &trace;
  IcebergReport rep_report;
  Result<TablePtr> replayed = db_.QueryIceberg(sql, replay, &rep_report);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  ExpectSameRows(*captured, *replayed, "schedule replay");
  // Filters are rebuilt from data on the replay path, so the replayed run
  // eliminates exactly the same rows.
  EXPECT_EQ(rep_report.exec_stats.transfer_rows_eliminated,
            cap_report.exec_stats.transfer_rows_eliminated);
  EXPECT_GT(rep_report.exec_stats.transfer_rows_eliminated, 0u);
}

}  // namespace
}  // namespace iceberg
