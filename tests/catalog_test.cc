// Unit tests for src/catalog: Schema and FD reasoning (closure, superkey,
// qualification) — the machinery behind Theorems 2 and 3.

#include <gtest/gtest.h>

#include "src/catalog/fd.h"
#include "src/catalog/schema.h"

namespace iceberg {
namespace {

TEST(Schema, FindColumnCaseInsensitive) {
  Schema s({{"Id", DataType::kInt64}, {"Name", DataType::kString}});
  EXPECT_EQ(*s.FindColumn("id"), 0u);
  EXPECT_EQ(*s.FindColumn("NAME"), 1u);
  EXPECT_FALSE(s.FindColumn("missing").has_value());
}

TEST(Schema, GetColumnIndexError) {
  Schema s({{"a", DataType::kInt64}});
  Result<size_t> r = s.GetColumnIndex("b");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST(Schema, AddColumnRejectsDuplicates) {
  Schema s;
  EXPECT_TRUE(s.AddColumn({"a", DataType::kInt64}).ok());
  EXPECT_FALSE(s.AddColumn({"A", DataType::kDouble}).ok());
}

TEST(Schema, Concat) {
  Schema l({{"a", DataType::kInt64}});
  Schema r({{"b", DataType::kString}});
  Schema c = Schema::Concat(l, r);
  EXPECT_EQ(c.num_columns(), 2u);
  EXPECT_EQ(c.column(1).name, "b");
}

TEST(Fd, ClosureBasic) {
  FdSet fds;
  fds.Add({"a"}, {"b"});
  fds.Add({"b"}, {"c"});
  AttrSet closure = fds.Closure(MakeAttrSet({"a"}));
  EXPECT_EQ(closure, MakeAttrSet({"a", "b", "c"}));
}

TEST(Fd, ClosureRequiresFullLhs) {
  FdSet fds;
  fds.Add({"a", "b"}, {"c"});
  EXPECT_EQ(fds.Closure(MakeAttrSet({"a"})), MakeAttrSet({"a"}));
  EXPECT_EQ(fds.Closure(MakeAttrSet({"a", "b"})),
            MakeAttrSet({"a", "b", "c"}));
}

TEST(Fd, EmptyLhsAlwaysFires) {
  FdSet fds;
  fds.Add(FunctionalDependency{{}, MakeAttrSet({"k"})});
  EXPECT_EQ(fds.Closure({}), MakeAttrSet({"k"}));
}

TEST(Fd, SuperkeyCheck) {
  // basket(bid, item) with key (bid, item): the market-basket check of
  // Example 6 — {item, bid} is a superkey.
  FdSet fds;
  fds.Add({"bid", "item"}, {"bid", "item"});
  AttrSet all = MakeAttrSet({"bid", "item"});
  EXPECT_TRUE(fds.IsSuperkey(MakeAttrSet({"bid", "item"}), all));
  EXPECT_FALSE(fds.IsSuperkey(MakeAttrSet({"item"}), all));
}

TEST(Fd, EquivalencePropagation) {
  FdSet fds;
  fds.AddEquivalence("s1.id", "s2.id");
  fds.Add({"s2.id"}, {"s2.category"});
  EXPECT_TRUE(fds.Determines(MakeAttrSet({"s1.id"}),
                             MakeAttrSet({"s2.category"})));
}

TEST(Fd, WithQualifierPrefixesBothSides) {
  FdSet fds;
  fds.Add({"id"}, {"category"});
  FdSet lifted = fds.WithQualifier("S1");
  ASSERT_EQ(lifted.size(), 1u);
  EXPECT_TRUE(lifted.Determines(MakeAttrSet({"s1.id"}),
                                MakeAttrSet({"s1.category"})));
  EXPECT_FALSE(
      lifted.Determines(MakeAttrSet({"id"}), MakeAttrSet({"category"})));
}

TEST(Fd, CaseFolding) {
  FdSet fds;
  fds.Add({"ID"}, {"Category"});
  EXPECT_TRUE(
      fds.Determines(MakeAttrSet({"id"}), MakeAttrSet({"category"})));
}

TEST(Fd, MergeCombines) {
  FdSet a, b;
  a.Add({"x"}, {"y"});
  b.Add({"y"}, {"z"});
  a.Merge(b);
  EXPECT_TRUE(a.Determines(MakeAttrSet({"x"}), MakeAttrSet({"z"})));
}

TEST(Fd, Example7DiscountScenario) {
  // Basket(bid, item, did) key (bid,item,did)... simplified: check that
  // G_R + J_R^= = {rate, did} is a superkey of Discount(did, rate) with
  // key did.
  FdSet discount;
  discount.Add({"did"}, {"did", "rate"});
  EXPECT_TRUE(discount.IsSuperkey(MakeAttrSet({"rate", "did"}),
                                  MakeAttrSet({"did", "rate"})));
  // But {item, did} is not a superkey of Basket(bid, item, did).
  FdSet basket;
  basket.Add({"bid", "item", "did"}, {"bid", "item", "did"});
  EXPECT_FALSE(basket.IsSuperkey(MakeAttrSet({"item", "did"}),
                                 MakeAttrSet({"bid", "item", "did"})));
}

TEST(Fd, ToStringReadable) {
  FdSet fds;
  fds.Add({"a"}, {"b"});
  EXPECT_EQ(fds.ToString(), "{a} -> {b}");
}

}  // namespace
}  // namespace iceberg
