// Tests for the generalized a-priori technique (Section 4): Theorem 2's
// schema-based safety checks on the paper's own examples, reducer
// construction, and end-to-end equivalence of the reduced query.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/engine/database.h"
#include "src/rewrite/apriori.h"
#include "src/rewrite/iceberg_view.h"

namespace iceberg {
namespace {

Result<IcebergView> ViewOf(Database* db, const std::string& sql,
                           std::vector<size_t> left,
                           std::vector<size_t> right,
                           QueryBlock* block_storage) {
  ICEBERG_ASSIGN_OR_RETURN(*block_storage, db->Prepare(sql));
  TablePartition part;
  part.left = std::move(left);
  part.right = std::move(right);
  return AnalyzeIceberg(*block_storage, part);
}

class AprioriTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // basket(bid, item), key (bid, item) — Listings 1 / Example 6.
    ASSERT_TRUE(db_.CreateTable("basket", Schema({{"bid", DataType::kInt64},
                                                  {"item", DataType::kInt64}}))
                    .ok());
    ASSERT_TRUE(db_.DeclareKey("basket", {"bid", "item"}).ok());
    // Example 7's tables: basket3(bid, item, did) and discount(did, rate).
    ASSERT_TRUE(
        db_.CreateTable("basket3", Schema({{"bid", DataType::kInt64},
                                           {"item", DataType::kInt64},
                                           {"did", DataType::kInt64}}))
            .ok());
    ASSERT_TRUE(db_.DeclareKey("basket3", {"bid", "item", "did"}).ok());
    ASSERT_TRUE(
        db_.CreateTable("discount", Schema({{"did", DataType::kInt64},
                                            {"rate", DataType::kDouble}}))
            .ok());
    ASSERT_TRUE(db_.DeclareKey("discount", {"did"}).ok());
    // object(id, x, y), key id — Listing 2.
    ASSERT_TRUE(db_.CreateTable("object", Schema({{"id", DataType::kInt64},
                                                  {"x", DataType::kInt64},
                                                  {"y", DataType::kInt64}}))
                    .ok());
    ASSERT_TRUE(db_.DeclareKey("object", {"id"}).ok());
  }

  Database db_;
};

TEST_F(AprioriTest, Example6MarketBasketMonotoneSafe) {
  QueryBlock block;
  auto view = ViewOf(&db_,
                     "SELECT i1.item, i2.item FROM basket i1, basket i2 "
                     "WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item "
                     "HAVING COUNT(*) >= 20",
                     {0}, {1}, &block);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  auto opp = CheckApriori(*view);
  ASSERT_TRUE(opp.ok()) << opp.status().ToString();
  EXPECT_EQ(opp->monotonicity, Monotonicity::kMonotone);
  // The reducer is exactly Listing 1 pushed to one table.
  EXPECT_NE(opp->reducer_block.ToString().find("GROUP BY i1.item"),
            std::string::npos);
  ASSERT_EQ(opp->applications.size(), 1u);
  EXPECT_EQ(opp->applications[0].table_index, 0u);
}

TEST_F(AprioriTest, Example6AntiMonotoneUnsafe) {
  // Infrequent pairs: COUNT(*) <= 20 requires item -> bid, which fails.
  QueryBlock block;
  auto view = ViewOf(&db_,
                     "SELECT i1.item, i2.item FROM basket i1, basket i2 "
                     "WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item "
                     "HAVING COUNT(*) <= 20",
                     {0}, {1}, &block);
  ASSERT_TRUE(view.ok());
  auto opp = CheckApriori(*view);
  EXPECT_FALSE(opp.ok());
}

TEST_F(AprioriTest, Example7MonotoneAsymmetry) {
  const char* sql =
      "SELECT item, rate FROM basket3 L, discount R WHERE L.did = R.did "
      "GROUP BY item, rate HAVING COUNT(DISTINCT bid) >= 25";
  // Safe for L = basket3: G_R + J_R^= = {rate, did} is a superkey of
  // discount.
  QueryBlock block1;
  auto view_l = ViewOf(&db_, sql, {0}, {1}, &block1);
  ASSERT_TRUE(view_l.ok());
  EXPECT_TRUE(CheckApriori(*view_l).ok());
  // NOT safe for R = discount: {item, did} is not a superkey of basket3.
  QueryBlock block2;
  auto view_r = ViewOf(&db_, sql, {1}, {0}, &block2);
  ASSERT_TRUE(view_r.ok());
  EXPECT_FALSE(CheckApriori(*view_r).ok());
}

TEST_F(AprioriTest, Example7AntiMonotoneViaGlDeterminesJl) {
  // With the additional FD item -> did, the anti-monotone variant becomes
  // safe for L through the OTHER Theorem 2 branch (G_L -> J_L).
  ASSERT_TRUE(db_.DeclareFd("basket3", {"item"}, {"did"}).ok());
  const char* sql =
      "SELECT item, rate FROM basket3 L, discount R WHERE L.did = R.did "
      "GROUP BY item, rate HAVING COUNT(DISTINCT bid) <= 25";
  QueryBlock block;
  auto view = ViewOf(&db_, sql, {0}, {1}, &block);
  ASSERT_TRUE(view.ok());
  auto opp = CheckApriori(*view);
  ASSERT_TRUE(opp.ok()) << opp.status().ToString();
  EXPECT_EQ(opp->monotonicity, Monotonicity::kAntiMonotone);
}

TEST_F(AprioriTest, Example7AntiMonotoneWithoutFdUnsafe) {
  const char* sql =
      "SELECT item, rate FROM basket3 L, discount R WHERE L.did = R.did "
      "GROUP BY item, rate HAVING COUNT(DISTINCT bid) <= 25";
  QueryBlock block;
  auto view = ViewOf(&db_, sql, {0}, {1}, &block);
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(CheckApriori(*view).ok());
}

TEST_F(AprioriTest, SkybandReducerRejectedAsUseless) {
  // Q1-Q3/Q8: safe per Theorem 2 but cannot filter singleton groups.
  QueryBlock block;
  auto view = ViewOf(&db_,
                     "SELECT L.id, COUNT(*) FROM object L, object R "
                     "WHERE L.x <= R.x AND L.y <= R.y "
                     "GROUP BY L.id HAVING COUNT(*) <= 50",
                     {0}, {1}, &block);
  ASSERT_TRUE(view.ok());
  auto opp = CheckApriori(*view);
  EXPECT_FALSE(opp.ok());
  EXPECT_NE(opp.status().message().find("singleton"), std::string::npos);
}

TEST_F(AprioriTest, NeitherMonotonicityRejected) {
  QueryBlock block;
  auto view = ViewOf(&db_,
                     "SELECT i1.item, i2.item FROM basket i1, basket i2 "
                     "WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item "
                     "HAVING AVG(i1.bid) >= 20",
                     {0}, {1}, &block);
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(CheckApriori(*view).ok());
}

TEST_F(AprioriTest, HavingNotApplicableToLeftRejected) {
  QueryBlock block;
  auto view = ViewOf(&db_,
                     "SELECT i1.item, i2.item FROM basket i1, basket i2 "
                     "WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item "
                     "HAVING MAX(i2.bid) >= 20",
                     {0}, {1}, &block);
  ASSERT_TRUE(view.ok());
  auto opp = CheckApriori(*view);
  EXPECT_FALSE(opp.ok());
  EXPECT_NE(opp.status().message().find("not applicable"),
            std::string::npos);
}

TEST_F(AprioriTest, ApplyAprioriFiltersRows) {
  // Items 1,2 appear 3x together; items 5-9 appear once each.
  int data[][2] = {{1, 1}, {1, 2}, {1, 9}, {2, 1}, {2, 2},
                   {3, 1}, {3, 2}, {3, 5}};
  for (auto& d : data) {
    ASSERT_TRUE(
        db_.Insert("basket", {Value::Int(d[0]), Value::Int(d[1])}).ok());
  }
  QueryBlock block;
  auto view = ViewOf(&db_,
                     "SELECT i1.item, i2.item FROM basket i1, basket i2 "
                     "WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item "
                     "HAVING COUNT(*) >= 3",
                     {0}, {1}, &block);
  ASSERT_TRUE(view.ok());
  auto opp = CheckApriori(*view);
  ASSERT_TRUE(opp.ok()) << opp.status().ToString();
  Executor executor;
  size_t reducer_rows = 0;
  auto replacements = ApplyApriori(*opp, &executor, &reducer_rows);
  ASSERT_TRUE(replacements.ok()) << replacements.status().ToString();
  EXPECT_EQ(reducer_rows, 2u);  // items 1 and 2 are frequent
  ASSERT_EQ(replacements->size(), 1u);
  TablePtr reduced = (*replacements)[0];
  EXPECT_EQ(reduced->num_rows(), 6u);  // rows with item in {1, 2}
  for (const Row& row : reduced->rows()) {
    EXPECT_LE(row[1].AsInt(), 2);
  }
}

/// Property sweep: on random basket instances and varying thresholds, the
/// reduced query must return exactly the original result (Definition 2).
class AprioriEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(AprioriEquivalence, ReducedQueryEquivalent) {
  int threshold = GetParam();
  Database db;
  ASSERT_TRUE(db.CreateTable("basket", Schema({{"bid", DataType::kInt64},
                                               {"item", DataType::kInt64}}))
                  .ok());
  ASSERT_TRUE(db.DeclareKey("basket", {"bid", "item"}).ok());
  // Deterministic pseudo-random content.
  uint64_t state = 12345 + static_cast<uint64_t>(threshold);
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  std::set<std::pair<int, int>> seen;
  for (int i = 0; i < 500; ++i) {
    int bid = static_cast<int>(next() % 60);
    int item = static_cast<int>(next() % 25);
    if (seen.emplace(bid, item).second) {
      ASSERT_TRUE(
          db.Insert("basket", {Value::Int(bid), Value::Int(item)}).ok());
    }
  }
  std::string sql =
      "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 "
      "WHERE i1.bid = i2.bid AND i1.item < i2.item "
      "GROUP BY i1.item, i2.item HAVING COUNT(*) >= " +
      std::to_string(threshold);
  auto base = db.Query(sql);
  ASSERT_TRUE(base.ok());
  auto smart = db.QueryIceberg(sql, IcebergOptions::Only(true, false, false));
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  ASSERT_EQ((*base)->num_rows(), (*smart)->num_rows()) << sql;
  std::vector<Row> a = (*base)->rows(), b = (*smart)->rows();
  std::sort(a.begin(), a.end(), RowLess());
  std::sort(b.begin(), b.end(), RowLess());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(CompareRows(a[i], b[i]), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, AprioriEquivalence,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 20));

}  // namespace
}  // namespace iceberg
