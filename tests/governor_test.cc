// Tests for the per-query resource governor: deadlines, cooperative
// cancellation, memory budgets with graceful cache shedding, and the
// intermediate-row limit — driven through the deterministic fault-injection
// probe rather than wall-clock sleeps wherever possible.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/engine/database.h"
#include "src/exec/governor.h"
#include "src/workload/object.h"

namespace iceberg {
namespace {

// ---------------------------------------------------------------------------
// QueryGovernor unit tests
// ---------------------------------------------------------------------------

TEST(Governor, UnlimitedByDefault) {
  QueryGovernor gov;
  EXPECT_TRUE(gov.Check().ok());
  EXPECT_TRUE(gov.Reserve(1 << 30, "test").ok());
  EXPECT_TRUE(gov.TryReserve(1 << 30, "test"));
  EXPECT_TRUE(gov.CountIntermediateRows(1000000).ok());
  EXPECT_TRUE(gov.Check().ok());
}

TEST(Governor, ZeroDeadlineTripsImmediately) {
  QueryGovernor::Limits limits;
  limits.deadline_ms = 0;  // already expired: deterministic
  QueryGovernor gov(limits);
  Status st = gov.Check();
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  EXPECT_NE(st.message().find("deadline"), std::string::npos);
}

TEST(Governor, CancellationTokenObservedByCheck) {
  QueryGovernor gov;
  EXPECT_TRUE(gov.Check().ok());
  gov.RequestCancel();
  EXPECT_TRUE(gov.cancel_requested());
  Status st = gov.Check();
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
}

TEST(Governor, ProbeCancelsAtNthCheckAndPoisonSticks) {
  GovernorProbe probe;
  probe.on_check = [](size_t ordinal) {
    return ordinal == 3 ? Status::Cancelled("injected at check 3")
                        : Status::OK();
  };
  QueryGovernor gov(QueryGovernor::Limits(), probe);
  EXPECT_TRUE(gov.Check().ok());
  EXPECT_TRUE(gov.Check().ok());
  Status st = gov.Check();
  EXPECT_TRUE(st.IsCancelled());
  // Poisoned: the same status is returned forever after, even though the
  // probe no longer fires.
  EXPECT_TRUE(gov.poisoned());
  Status again = gov.Check();
  EXPECT_TRUE(again.IsCancelled());
  EXPECT_NE(again.message().find("injected at check 3"), std::string::npos);
  EXPECT_EQ(gov.checks_performed(), 4u);
}

TEST(Governor, ReserveReleaseAccounting) {
  QueryGovernor gov;
  EXPECT_TRUE(gov.Reserve(100, "a").ok());
  EXPECT_TRUE(gov.Reserve(50, "b").ok());
  EXPECT_EQ(gov.bytes_in_use(), 150u);
  EXPECT_EQ(gov.bytes_peak(), 150u);
  gov.Release(100);
  EXPECT_EQ(gov.bytes_in_use(), 50u);
  EXPECT_EQ(gov.bytes_peak(), 150u);  // peak is sticky
  gov.Release(1000);                  // clamped, never underflows
  EXPECT_EQ(gov.bytes_in_use(), 0u);
}

TEST(Governor, HardReserveOverBudgetPoisons) {
  QueryGovernor::Limits limits;
  limits.memory_budget_bytes = 100;
  QueryGovernor gov(limits);
  Status st = gov.Reserve(200, "hash-aggregation");
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_NE(st.message().find("hash-aggregation"), std::string::npos);
  // Poisoned: subsequent checks fail with the same status.
  EXPECT_TRUE(gov.Check().IsResourceExhausted());
}

TEST(Governor, SoftReserveOverBudgetDoesNotPoison) {
  QueryGovernor::Limits limits;
  limits.memory_budget_bytes = 100;
  QueryGovernor gov(limits);
  EXPECT_FALSE(gov.TryReserve(200, "nljp-cache"));
  EXPECT_FALSE(gov.poisoned());
  EXPECT_TRUE(gov.Check().ok());
  EXPECT_TRUE(gov.TryReserve(80, "nljp-cache"));
  EXPECT_EQ(gov.bytes_in_use(), 80u);
}

TEST(Governor, ReclaimerShedsBeforeFailure) {
  QueryGovernor::Limits limits;
  limits.memory_budget_bytes = 1000;
  QueryGovernor gov(limits);
  ASSERT_TRUE(gov.Reserve(900, "advisory").ok());
  size_t reclaims = 0;
  gov.RegisterReclaimer([&](size_t needed) -> size_t {
    ++reclaims;
    size_t freed = std::max<size_t>(needed, 500);
    gov.Release(freed);
    gov.AddCacheShed(1);
    return freed;
  });
  // 900 + 400 > 1000: the reclaimer must be consulted, after which the
  // reservation fits.
  EXPECT_TRUE(gov.Reserve(400, "mandatory").ok());
  EXPECT_EQ(reclaims, 1u);
  EXPECT_EQ(gov.cache_shed_entries(), 1u);
  gov.UnregisterReclaimer();
  // Without the reclaimer, the same pressure is fatal.
  Status st = gov.Reserve(900, "mandatory");
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
}

TEST(Governor, ProbeInjectsBudgetFailureAtNthReserve) {
  GovernorProbe probe;
  probe.on_reserve = [](size_t ordinal, size_t bytes, const char* tag) {
    (void)bytes;
    (void)tag;
    return ordinal == 2 ? Status::ResourceExhausted("injected at reserve 2")
                        : Status::OK();
  };
  QueryGovernor gov(QueryGovernor::Limits(), probe);
  EXPECT_TRUE(gov.Reserve(10, "a").ok());
  Status st = gov.Reserve(10, "b");
  EXPECT_TRUE(st.IsResourceExhausted());
  EXPECT_TRUE(gov.Check().IsResourceExhausted());  // hard failure poisons
}

TEST(Governor, ProbeSeesReserveTags) {
  std::vector<std::string> tags;
  GovernorProbe probe;
  probe.on_reserve = [&](size_t, size_t, const char* tag) {
    tags.push_back(tag);
    return Status::OK();
  };
  QueryGovernor gov(QueryGovernor::Limits(), probe);
  ASSERT_TRUE(gov.Reserve(1, "hash-aggregation").ok());
  ASSERT_TRUE(gov.TryReserve(1, "nljp-cache"));
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0], "hash-aggregation");
  EXPECT_EQ(tags[1], "nljp-cache");
}

TEST(Governor, IntermediateRowLimit) {
  QueryGovernor::Limits limits;
  limits.max_intermediate_rows = 10;
  QueryGovernor gov(limits);
  EXPECT_TRUE(gov.CountIntermediateRows(10).ok());
  Status st = gov.CountIntermediateRows(1);
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_TRUE(gov.Check().IsResourceExhausted());
}

// ---------------------------------------------------------------------------
// End-to-end: both engines under governance
// ---------------------------------------------------------------------------

constexpr char kSkyband[] =
    "SELECT L.id, COUNT(*) FROM object L, object R "
    "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
    "GROUP BY L.id HAVING COUNT(*) <= 12";

class GovernedQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ObjectConfig cfg;
    cfg.num_objects = 400;
    cfg.domain = 30;  // duplicate-rich: NLJP memoization applies
    ASSERT_TRUE(RegisterObjects(&db_, cfg).ok());
    base_ = *db_.Query(kSkyband);
  }

  void ExpectSame(const TablePtr& a, const TablePtr& b) {
    ASSERT_EQ(a->num_rows(), b->num_rows());
    std::vector<Row> ra = a->rows(), rb = b->rows();
    std::sort(ra.begin(), ra.end(), RowLess());
    std::sort(rb.begin(), rb.end(), RowLess());
    for (size_t i = 0; i < ra.size(); ++i) {
      ASSERT_EQ(CompareRows(ra[i], rb[i]), 0);
    }
  }

  Database db_;
  TablePtr base_;
};

TEST_F(GovernedQueryTest, ExpiredDeadlineCancelsBothEngines) {
  QueryGovernor::Limits limits;
  limits.deadline_ms = 0;  // deterministically already expired

  ExecOptions exec;
  exec.governor = std::make_shared<QueryGovernor>(limits);
  Result<TablePtr> baseline = db_.Query(kSkyband, exec);
  ASSERT_FALSE(baseline.ok());
  EXPECT_TRUE(baseline.status().IsCancelled())
      << baseline.status().ToString();

  IcebergOptions options = IcebergOptions::All();
  options.governor = std::make_shared<QueryGovernor>(limits);
  Result<TablePtr> smart = db_.QueryIceberg(kSkyband, options);
  ASSERT_FALSE(smart.ok());
  EXPECT_TRUE(smart.status().IsCancelled()) << smart.status().ToString();
}

TEST_F(GovernedQueryTest, PreCancelledTokenRejectsBothEngines) {
  ExecOptions exec;
  exec.governor = std::make_shared<QueryGovernor>();
  exec.governor->RequestCancel();
  Result<TablePtr> baseline = db_.Query(kSkyband, exec);
  ASSERT_FALSE(baseline.ok());
  EXPECT_TRUE(baseline.status().IsCancelled());

  IcebergOptions options = IcebergOptions::All();
  options.governor = std::make_shared<QueryGovernor>();
  options.governor->RequestCancel();
  Result<TablePtr> smart = db_.QueryIceberg(kSkyband, options);
  ASSERT_FALSE(smart.ok());
  EXPECT_TRUE(smart.status().IsCancelled());
}

TEST_F(GovernedQueryTest, ProbeCancelsMidJoinOnBaseline) {
  GovernorProbe probe;
  probe.on_check = [](size_t ordinal) {
    return ordinal == 50 ? Status::Cancelled("mid-join cancel")
                         : Status::OK();
  };
  ExecOptions exec;
  exec.governor =
      std::make_shared<QueryGovernor>(QueryGovernor::Limits(), probe);
  ExecStats stats;
  Result<TablePtr> r = db_.Query(kSkyband, exec, &stats);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("mid-join cancel"), std::string::npos);
  // The join loop performed checks up to the injected trip and not many
  // more (it aborts at loop granularity, not at the end).
  EXPECT_GE(exec.governor->checks_performed(), 50u);
  EXPECT_LT(exec.governor->checks_performed(), 100u);
}

TEST_F(GovernedQueryTest, ProbeCancelsMidJoinOnIceberg) {
  GovernorProbe probe;
  probe.on_check = [](size_t ordinal) {
    return ordinal == 50 ? Status::Cancelled("mid-join cancel")
                         : Status::OK();
  };
  IcebergOptions options = IcebergOptions::All();
  options.governor =
      std::make_shared<QueryGovernor>(QueryGovernor::Limits(), probe);
  Result<TablePtr> r = db_.QueryIceberg(kSkyband, options);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
}

TEST_F(GovernedQueryTest, ProbeCancelsParallelBaseline) {
  ObjectConfig big;
  big.num_objects = 3000;  // above the parallel threshold
  big.domain = 50;
  Database db;
  ASSERT_TRUE(RegisterObjects(&db, big).ok());
  GovernorProbe probe;
  probe.on_check = [](size_t ordinal) {
    return ordinal == 40 ? Status::Cancelled("parallel cancel")
                         : Status::OK();
  };
  ExecOptions exec = ExecOptions::VendorA();
  exec.governor =
      std::make_shared<QueryGovernor>(QueryGovernor::Limits(), probe);
  Result<TablePtr> r = db.Query(kSkyband, exec);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
}

TEST_F(GovernedQueryTest, InjectedBudgetFailureOnAggregation) {
  GovernorProbe probe;
  probe.on_reserve = [](size_t, size_t, const char* tag) {
    return std::string(tag) == "hash-aggregation"
               ? Status::ResourceExhausted("injected aggregation overrun")
               : Status::OK();
  };
  ExecOptions exec;
  exec.governor =
      std::make_shared<QueryGovernor>(QueryGovernor::Limits(), probe);
  Result<TablePtr> r = db_.Query(kSkyband, exec);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
}

TEST_F(GovernedQueryTest, IntermediateRowLimitTripsBaseline) {
  QueryGovernor::Limits limits;
  limits.max_intermediate_rows = 100;  // far below the join's output
  ExecOptions exec;
  exec.governor = std::make_shared<QueryGovernor>(limits);
  Result<TablePtr> r = db_.Query(kSkyband, exec);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();
  EXPECT_NE(r.status().message().find("intermediate-row"),
            std::string::npos);
}

TEST_F(GovernedQueryTest, GovernedRunMatchesUngovernedAndFillsStats) {
  ExecOptions exec;
  exec.governor = std::make_shared<QueryGovernor>();  // track, no limits
  ExecStats stats;
  Result<TablePtr> r = db_.Query(kSkyband, exec, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ExpectSame(base_, *r);
  EXPECT_GT(stats.cancel_checks, 0u);
  EXPECT_GT(stats.budget_bytes_peak, 0u);
  EXPECT_NE(stats.ToString().find("checks="), std::string::npos);
  EXPECT_NE(stats.ToString().find("peak_kb="), std::string::npos);
}

TEST_F(GovernedQueryTest, MemoryBudgetForcesCacheShedButStaysCorrect) {
  // Pass 1: track (no limit) to learn the working set.
  IcebergOptions options = IcebergOptions::All();
  options.governor = std::make_shared<QueryGovernor>();
  IcebergReport full_report;
  Result<TablePtr> full = db_.QueryIceberg(kSkyband, options, &full_report);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_TRUE(full_report.used_nljp);
  size_t peak = full_report.nljp_stats.budget_bytes_peak;
  size_t cache_bytes = full_report.nljp_stats.cache_bytes;
  ASSERT_GT(peak, 0u);
  ASSERT_GT(cache_bytes, 0u);
  ASSERT_GT(peak, cache_bytes / 2);

  // Pass 2: a budget below the working set but with room for all mandatory
  // state — the cache must shed instead of the query failing.
  QueryGovernor::Limits limits;
  limits.memory_budget_bytes = peak - cache_bytes / 2;
  IcebergOptions tight = IcebergOptions::All();
  tight.governor = std::make_shared<QueryGovernor>(limits);
  IcebergReport report;
  Result<TablePtr> shed = db_.QueryIceberg(kSkyband, tight, &report);
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  ExpectSame(base_, *shed);
  EXPECT_GT(report.nljp_stats.cache_shed_entries, 0u);
  EXPECT_LE(report.nljp_stats.budget_bytes_peak,
            limits.memory_budget_bytes);
  // The degradation is surfaced in the report.
  bool recorded = false;
  for (const std::string& d : report.degradations) {
    if (d.find("shed") != std::string::npos) recorded = true;
  }
  EXPECT_TRUE(recorded) << report.ToString();
}

TEST_F(GovernedQueryTest, TinyBudgetFailsCleanlyWithResourceExhausted) {
  // A budget too small even for mandatory state: the query must fail with
  // ResourceExhausted, not crash or hang.
  QueryGovernor::Limits limits;
  limits.memory_budget_bytes = 64;
  IcebergOptions options = IcebergOptions::All();
  options.governor = std::make_shared<QueryGovernor>(limits);
  Result<TablePtr> r = db_.QueryIceberg(kSkyband, options);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status().ToString();

  ExecOptions exec;
  exec.governor = std::make_shared<QueryGovernor>(limits);
  Result<TablePtr> b = db_.Query(kSkyband, exec);
  ASSERT_FALSE(b.ok());
  EXPECT_TRUE(b.status().IsResourceExhausted()) << b.status().ToString();
}

TEST_F(GovernedQueryTest, NljpStatsRecordGovernance) {
  IcebergOptions options = IcebergOptions::All();
  options.governor = std::make_shared<QueryGovernor>();
  IcebergReport report;
  Result<TablePtr> r = db_.QueryIceberg(kSkyband, options, &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(report.used_nljp);
  EXPECT_GT(report.nljp_stats.cancel_checks, 0u);
  EXPECT_GT(report.nljp_stats.budget_bytes_peak, 0u);
  EXPECT_NE(report.nljp_stats.ToString().find("checks="),
            std::string::npos);
}

}  // namespace
}  // namespace iceberg
