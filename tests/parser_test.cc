// Unit tests for src/parser: tokenizer and the SQL-subset grammar,
// including the paper's Listings 1-4 verbatim.

#include <gtest/gtest.h>

#include "src/parser/parser.h"
#include "src/parser/token.h"

namespace iceberg {
namespace {

TEST(Tokenizer, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("select FROM GrOuP");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[2].text, "GROUP");
}

TEST(Tokenizer, NumbersIntVsDoubleVsQualified) {
  auto tokens = Tokenize("1 2.5 1e3 t.col");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kDoubleLiteral);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kDoubleLiteral);
  // "t.col" must lex as ident, dot, ident (not a decimal).
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[4].text, ".");
}

TEST(Tokenizer, StringsAndComments) {
  auto tokens = Tokenize("'hi there' -- comment\n 'x'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ((*tokens)[0].text, "hi there");
  EXPECT_EQ((*tokens)[1].text, "x");
}

TEST(Tokenizer, MultiCharOperators) {
  auto tokens = Tokenize("<= >= <> != <");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "<=");
  EXPECT_EQ((*tokens)[1].text, ">=");
  EXPECT_EQ((*tokens)[2].text, "<>");
  EXPECT_EQ((*tokens)[3].text, "<>");  // != normalizes
  EXPECT_EQ((*tokens)[4].text, "<");
}

TEST(Tokenizer, ErrorsOnUnterminatedString) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(Tokenizer, ErrorsOnUnknownChar) { EXPECT_FALSE(Tokenize("a @ b").ok()); }

TEST(Parser, MarketBasketListing1) {
  auto q = ParseSql(
      "SELECT i1.item, i2.item FROM Basket i1, Basket i2 "
      "WHERE i1.bid = i2.bid GROUP BY i1.item, i2.item "
      "HAVING COUNT(*) >= 20;");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const ParsedSelect& s = *q->select;
  EXPECT_EQ(s.items.size(), 2u);
  ASSERT_EQ(s.from.size(), 2u);
  EXPECT_EQ(s.from[0].table_name, "Basket");
  EXPECT_EQ(s.from[0].alias, "i1");
  EXPECT_EQ(s.group_by.size(), 2u);
  ASSERT_NE(s.having, nullptr);
  EXPECT_EQ(s.having->ToString(), "COUNT(*) >= 20");
}

TEST(Parser, SkybandListing2) {
  auto q = ParseSql(
      "SELECT L.id, COUNT(*) FROM Object L, Object R "
      "WHERE L.x<=R.x AND L.y<=R.y AND (L.x<R.x OR L.y<R.y) "
      "GROUP BY L.id HAVING COUNT(*) <= 50;");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // WHERE parses as (a AND b) AND (c OR d).
  const ExprPtr& w = q->select->where;
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->bop, BinaryOp::kAnd);
  EXPECT_EQ(w->children[1]->bop, BinaryOp::kOr);
}

TEST(Parser, PairsListing4WithCte) {
  auto q = ParseSql(
      "WITH pair AS (SELECT s1.pid AS pid1, s2.pid AS pid2, "
      "AVG(s1.hits) AS hits1 FROM Score s1, Score s2 "
      "WHERE s1.teamid = s2.teamid AND s1.pid < s2.pid "
      "GROUP BY s1.pid, s2.pid HAVING COUNT(*) >= 3) "
      "SELECT L.pid1, COUNT(*) FROM pair L, pair R "
      "WHERE R.hits1 >= L.hits1 GROUP BY L.pid1 HAVING COUNT(*) <= 20");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->ctes.size(), 1u);
  EXPECT_EQ(q->ctes[0].first, "pair");
  EXPECT_EQ(q->ctes[0].second->items[2].alias, "hits1");
}

TEST(Parser, ComplexListing3) {
  auto q = ParseSql(
      "SELECT S1.id, S1.attr, S2.attr, COUNT(*) "
      "FROM Product S1, Product S2, Product T1, Product T2 "
      "WHERE S1.id = S2.id AND T1.id = T2.id "
      "AND S1.category = T1.category "
      "AND T1.attr = S1.attr AND T2.attr = S2.attr "
      "AND T1.val > S1.val AND T2.val > S2.val "
      "GROUP BY S1.id, S1.attr, S2.attr HAVING COUNT(*) >= 10");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select->from.size(), 4u);
}

TEST(Parser, SubqueryInFromRequiresAlias) {
  EXPECT_FALSE(ParseSql("SELECT a FROM (SELECT a FROM t)").ok());
  auto q = ParseSql("SELECT s.a FROM (SELECT a FROM t) s");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_NE(q->select->from[0].subquery, nullptr);
  EXPECT_EQ(q->select->from[0].alias, "s");
}

TEST(Parser, DistinctSelect) {
  auto q = ParseSql("SELECT DISTINCT x FROM t");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->select->distinct);
}

TEST(Parser, AggregateVariants) {
  auto e = ParseExpression("COUNT(DISTINCT bid) >= 25");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->children[0]->agg, AggFunc::kCountDistinct);
  e = ParseExpression("SUM(numSales * price) >= 1000000");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->children[0]->agg, AggFunc::kSum);
  e = ParseExpression("COUNT(1) < 50");
  ASSERT_TRUE(e.ok());
  // COUNT(1) normalizes to COUNT(*).
  EXPECT_EQ((*e)->children[0]->agg, AggFunc::kCountStar);
}

TEST(Parser, OperatorPrecedence) {
  auto e = ParseExpression("1 + 2 * 3 = 7");
  ASSERT_TRUE(e.ok());
  Row empty;
  // Evaluates as (1 + (2*3)) = 7.
  EXPECT_EQ((*e)->ToString(), "1 + 2 * 3 = 7");
}

TEST(Parser, UnaryMinusFoldsLiterals) {
  auto e = ParseExpression("-5");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kLiteral);
  EXPECT_EQ((*e)->literal.AsInt(), -5);
}

TEST(Parser, NullTrueFalseLiterals) {
  EXPECT_TRUE((*ParseExpression("NULL"))->literal.is_null());
  EXPECT_TRUE((*ParseExpression("TRUE"))->literal.AsBool());
  EXPECT_FALSE((*ParseExpression("FALSE"))->literal.AsBool());
}

TEST(Parser, ErrorMessages) {
  EXPECT_FALSE(ParseSql("SELECT").ok());
  EXPECT_FALSE(ParseSql("SELECT a").ok());            // missing FROM
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t GROUP a").ok());  // missing BY
  EXPECT_FALSE(ParseSql("SELECT a FROM t; garbage").ok());
  EXPECT_FALSE(ParseExpression("1 +").ok());
  EXPECT_FALSE(ParseExpression("COUNT(").ok());
}

TEST(Parser, RoundTripToString) {
  const char* sql =
      "SELECT t.a AS x FROM t WHERE t.a > 1 GROUP BY t.a HAVING COUNT(*) >= "
      "2";
  auto q = ParseSql(sql);
  ASSERT_TRUE(q.ok());
  // Reparsing the rendering must succeed and render identically (fixpoint).
  auto q2 = ParseSql(q->ToString());
  ASSERT_TRUE(q2.ok()) << q->ToString();
  EXPECT_EQ(q->ToString(), q2->ToString());
}

}  // namespace
}  // namespace iceberg
