// Tests for CSV import/export and table formatting.

#include <gtest/gtest.h>

#include <sstream>

#include "src/engine/csv.h"

namespace iceberg {
namespace {

Database MakeDb() {
  Database db;
  EXPECT_TRUE(db.CreateTable("t", Schema({{"id", DataType::kInt64},
                                          {"score", DataType::kDouble},
                                          {"name", DataType::kString}}))
                  .ok());
  return db;
}

TEST(Csv, LoadWithHeader) {
  Database db = MakeDb();
  std::istringstream input("id,score,name\n1,2.5,alice\n2,3,bob\n");
  ASSERT_TRUE(LoadCsv(&db, "t", input).ok());
  TablePtr t = *db.GetTable("t");
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->row(0)[0].AsInt(), 1);
  EXPECT_DOUBLE_EQ(t->row(0)[1].AsDouble(), 2.5);
  EXPECT_EQ(t->row(1)[2].AsString(), "bob");
}

TEST(Csv, HeaderPermutesColumns) {
  Database db = MakeDb();
  std::istringstream input("name,id,score\ncarol,7,1.5\n");
  ASSERT_TRUE(LoadCsv(&db, "t", input).ok());
  TablePtr t = *db.GetTable("t");
  EXPECT_EQ(t->row(0)[0].AsInt(), 7);
  EXPECT_EQ(t->row(0)[2].AsString(), "carol");
}

TEST(Csv, NoHeaderUsesPositions) {
  Database db = MakeDb();
  std::istringstream input("3,9.5,dave\n");
  CsvOptions options;
  options.header = false;
  ASSERT_TRUE(LoadCsv(&db, "t", input, options).ok());
  EXPECT_EQ((*db.GetTable("t"))->row(0)[0].AsInt(), 3);
}

TEST(Csv, EmptyFieldIsNull) {
  Database db = MakeDb();
  std::istringstream input("id,score,name\n1,,x\n");
  ASSERT_TRUE(LoadCsv(&db, "t", input).ok());
  EXPECT_TRUE((*db.GetTable("t"))->row(0)[1].is_null());
}

TEST(Csv, QuotedFieldsWithEscapes) {
  Database db = MakeDb();
  std::istringstream input(
      "id,score,name\n1,2.0,\"comma, inside\"\n2,3.0,\"quote \"\" here\"\n");
  ASSERT_TRUE(LoadCsv(&db, "t", input).ok());
  TablePtr t = *db.GetTable("t");
  EXPECT_EQ(t->row(0)[2].AsString(), "comma, inside");
  EXPECT_EQ(t->row(1)[2].AsString(), "quote \" here");
}

TEST(Csv, BadIntegerRejectedWithLocation) {
  Database db = MakeDb();
  std::istringstream input("id,score,name\nxyz,1.0,a\n");
  Status st = LoadCsv(&db, "t", input);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError) << st.ToString();
  // 1-based line number (header is line 1), 1-based field position, and the
  // offending field text.
  EXPECT_NE(st.message().find("line 2"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("field 1"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("'xyz'"), std::string::npos) << st.ToString();
}

TEST(Csv, BadFieldLocationWithoutHeader) {
  Database db = MakeDb();
  std::istringstream input("1,2.0,ok\n2,oops,x\n");
  CsvOptions options;
  options.header = false;
  Status st = LoadCsv(&db, "t", input, options);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError) << st.ToString();
  EXPECT_NE(st.message().find("line 2"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("field 2"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("score"), std::string::npos) << st.ToString();
  EXPECT_NE(st.message().find("'oops'"), std::string::npos) << st.ToString();
}

TEST(Csv, WrongFieldCountRejected) {
  Database db = MakeDb();
  std::istringstream input("id,score,name\n1,2.0\n");
  Status st = LoadCsv(&db, "t", input);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError) << st.ToString();
  EXPECT_NE(st.message().find("line 2"), std::string::npos) << st.ToString();
  // The offending record is quoted back to the user.
  EXPECT_NE(st.message().find("\"1,2.0\""), std::string::npos)
      << st.ToString();
}

TEST(Csv, UnknownHeaderColumnRejected) {
  Database db = MakeDb();
  std::istringstream input("id,score,nope\n");
  EXPECT_FALSE(LoadCsv(&db, "t", input).ok());
}

TEST(Csv, RoundTrip) {
  Database db = MakeDb();
  ASSERT_TRUE(
      db.Insert("t", {Value::Int(1), Value::Double(2.5),
                      Value::Str("has, comma")})
          .ok());
  ASSERT_TRUE(
      db.Insert("t", {Value::Int(2), Value::Null(), Value::Str("plain")})
          .ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(**db.GetTable("t"), out).ok());

  Database db2 = MakeDb();
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadCsv(&db2, "t", in).ok());
  TablePtr a = *db.GetTable("t");
  TablePtr b = *db2.GetTable("t");
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (size_t i = 0; i < a->num_rows(); ++i) {
    EXPECT_EQ(CompareRows(a->row(i), b->row(i)), 0);
  }
}

TEST(Csv, LoadMissingFileFails) {
  Database db = MakeDb();
  EXPECT_FALSE(LoadCsvFile(&db, "t", "/nonexistent/file.csv").ok());
}

TEST(FormatTable, AlignedOutput) {
  Database db = MakeDb();
  ASSERT_TRUE(
      db.Insert("t", {Value::Int(10), Value::Double(1.5), Value::Str("ab")})
          .ok());
  std::string text = FormatTable(**db.GetTable("t"));
  EXPECT_NE(text.find("id | score | name"), std::string::npos);
  EXPECT_NE(text.find("(1 rows)"), std::string::npos);
}

TEST(FormatTable, TruncatesLongTables) {
  Database db = MakeDb();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.Insert("t", {Value::Int(i), Value::Double(0),
                                Value::Str("r")})
                    .ok());
  }
  std::string text = FormatTable(**db.GetTable("t"), 5);
  EXPECT_NE(text.find("(95 more rows)"), std::string::npos);
}

}  // namespace
}  // namespace iceberg
