// Tests for the workload generators: determinism, schema/FD registration,
// and the distributional properties the experiments rely on (the Fig. 2
// contrast between correlated and trade-off attribute pairs).

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "src/engine/database.h"
#include "src/workload/baseball.h"
#include "src/workload/basket.h"
#include "src/workload/object.h"

namespace iceberg {
namespace {

TEST(Baseball, DeterministicForSeed) {
  BaseballConfig cfg;
  cfg.num_rows = 2000;
  cfg.num_players = 100;
  TablePtr a = MakeBaseballScores(cfg);
  TablePtr b = MakeBaseballScores(cfg);
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (size_t i = 0; i < a->num_rows(); ++i) {
    EXPECT_EQ(CompareRows(a->row(i), b->row(i)), 0);
  }
  cfg.seed = 43;
  TablePtr c = MakeBaseballScores(cfg);
  bool any_diff = false;
  for (size_t i = 0; i < a->num_rows(); ++i) {
    if (CompareRows(a->row(i), c->row(i)) != 0) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Baseball, RowCountAndKeyUniqueness) {
  BaseballConfig cfg;
  cfg.num_rows = 5000;
  cfg.num_players = 200;
  TablePtr t = MakeBaseballScores(cfg);
  EXPECT_EQ(t->num_rows(), 5000u);
  std::set<Row, RowLess> keys;
  for (const Row& row : t->rows()) {
    Row key{row[0], row[1], row[2]};  // (pid, year, round)
    EXPECT_TRUE(keys.insert(key).second) << RowToString(key);
  }
}

TEST(Baseball, StatsNonNegative) {
  BaseballConfig cfg;
  cfg.num_rows = 3000;
  TablePtr t = MakeBaseballScores(cfg);
  for (const Row& row : t->rows()) {
    for (size_t c = 4; c < 8; ++c) {
      EXPECT_GE(row[c].AsInt(), 0);
    }
  }
}

TEST(Baseball, CorrelationContrast) {
  // (hits, hruns) must be far more positively correlated than (h2, sb):
  // the Fig. 2 property driving different skyband densities.
  BaseballConfig cfg;
  cfg.num_rows = 20000;
  cfg.num_players = 1000;
  TablePtr t = MakeBaseballScores(cfg);
  auto correlation = [&](size_t a, size_t b) {
    double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
    double n = static_cast<double>(t->num_rows());
    for (const Row& row : t->rows()) {
      double x = row[a].AsDouble(), y = row[b].AsDouble();
      sa += x;
      sb += y;
      saa += x * x;
      sbb += y * y;
      sab += x * y;
    }
    double cov = sab / n - (sa / n) * (sb / n);
    double va = saa / n - (sa / n) * (sa / n);
    double vb = sbb / n - (sb / n) * (sb / n);
    return cov / std::sqrt(va * vb);
  };
  double hits_hruns = correlation(4, 5);
  double h2_sb = correlation(6, 7);
  EXPECT_GT(hits_hruns, 0.7);
  EXPECT_LT(h2_sb, 0.3);
  EXPECT_GT(hits_hruns, h2_sb + 0.4);
}

TEST(Baseball, RegisterSetsUpIndexesAndFds) {
  Database db;
  BaseballConfig cfg;
  cfg.num_rows = 1000;
  ASSERT_TRUE(RegisterBaseball(&db, cfg).ok());
  auto entry = db.GetEntry("score");
  ASSERT_TRUE(entry.ok());
  EXPECT_TRUE(entry->fds.Determines(
      MakeAttrSet({"pid", "year", "round"}), MakeAttrSet({"hits", "sb"})));
  EXPECT_GE(entry->table->num_ordered_indexes(), 2u);
  EXPECT_GE(entry->table->num_hash_indexes(), 1u);
}

TEST(Product, UnpivotProducesFourRowsPerRecord) {
  BaseballConfig cfg;
  cfg.num_rows = 1000;
  TablePtr scores = MakeBaseballScores(cfg);
  TablePtr product = MakeUnpivotedProduct(*scores, 250);
  EXPECT_EQ(product->num_rows(), 1000u);  // 250 records x 4 attrs
  // id -> category must hold.
  std::map<int64_t, int64_t> category_of;
  for (const Row& row : product->rows()) {
    auto [it, inserted] =
        category_of.emplace(row[0].AsInt(), row[1].AsInt());
    if (!inserted) {
      EXPECT_EQ(it->second, row[1].AsInt());
    }
  }
  // (id, attr) unique.
  std::set<Row, RowLess> keys;
  for (const Row& row : product->rows()) {
    EXPECT_TRUE(keys.insert({row[0], row[2]}).second);
  }
}

TEST(Basket, PlantedPairsAreFrequent) {
  Database db;
  BasketConfig cfg;
  cfg.num_baskets = 3000;
  cfg.num_items = 400;
  cfg.planted_pairs = 5;
  cfg.planted_support = 40;
  ASSERT_TRUE(RegisterBaskets(&db, cfg).ok());
  auto r = db.Query(
      "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 "
      "WHERE i1.bid = i2.bid AND i1.item < i2.item "
      "GROUP BY i1.item, i2.item HAVING COUNT(*) >= 30");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE((*r)->num_rows(), cfg.planted_pairs);
}

TEST(Basket, ItemUniqueWithinBasket) {
  BasketConfig cfg;
  cfg.num_baskets = 500;
  TablePtr t = MakeBaskets(cfg);
  std::set<Row, RowLess> keys;
  for (const Row& row : t->rows()) {
    EXPECT_TRUE(keys.insert(row).second);
  }
}

TEST(Objects, DistributionsDifferInSkylineSize) {
  auto skyline_size = [](PointDistribution dist) {
    ObjectConfig cfg;
    cfg.num_objects = 2000;
    cfg.distribution = dist;
    TablePtr t = MakeObjects(cfg);
    // Count maximal points (dominated by none) by brute force.
    size_t count = 0;
    for (size_t i = 0; i < t->num_rows(); ++i) {
      bool dominated = false;
      for (size_t j = 0; j < t->num_rows() && !dominated; ++j) {
        if (i == j) continue;
        int64_t xi = t->row(i)[1].AsInt(), yi = t->row(i)[2].AsInt();
        int64_t xj = t->row(j)[1].AsInt(), yj = t->row(j)[2].AsInt();
        if (xj >= xi && yj >= yi && (xj > xi || yj > yi)) dominated = true;
      }
      if (!dominated) ++count;
    }
    return count;
  };
  size_t correlated = skyline_size(PointDistribution::kCorrelated);
  size_t independent = skyline_size(PointDistribution::kIndependent);
  size_t anticorrelated = skyline_size(PointDistribution::kAnticorrelated);
  // The classic ordering: correlated <= independent << anticorrelated.
  // (Both correlated and independent skylines are tiny at n=2000, so we
  // allow a tie there; the anticorrelated frontier must be much broader.)
  EXPECT_LE(correlated, independent);
  EXPECT_GT(anticorrelated, 2 * independent);
}

TEST(Objects, CoordinatesWithinDomain) {
  ObjectConfig cfg;
  cfg.num_objects = 1000;
  cfg.domain = 100;
  TablePtr t = MakeObjects(cfg);
  for (const Row& row : t->rows()) {
    EXPECT_GE(row[1].AsInt(), 0);
    EXPECT_LT(row[1].AsInt(), 100);
    EXPECT_GE(row[2].AsInt(), 0);
    EXPECT_LT(row[2].AsInt(), 100);
  }
}

}  // namespace
}  // namespace iceberg
