// End-to-end smoke tests: the Smart-Iceberg path must agree with the
// baseline executor on the paper's three query templates over small data.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/engine/database.h"
#include "src/workload/object.h"

namespace iceberg {
namespace {

std::vector<Row> SortedRows(const TablePtr& table) {
  std::vector<Row> rows = table->rows();
  std::sort(rows.begin(), rows.end(), RowLess());
  return rows;
}

void ExpectSameResult(const TablePtr& a, const TablePtr& b) {
  ASSERT_EQ(a->num_rows(), b->num_rows());
  std::vector<Row> ra = SortedRows(a);
  std::vector<Row> rb = SortedRows(b);
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(CompareRows(ra[i], rb[i]), 0)
        << "row " << i << ": " << RowToString(ra[i]) << " vs "
        << RowToString(rb[i]);
  }
}

constexpr char kSkybandSql[] =
    "SELECT L.id, COUNT(*) FROM object L, object R "
    "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
    "GROUP BY L.id HAVING COUNT(*) <= 12";

TEST(Smoke, SkybandIcebergMatchesBaseline) {
  Database db;
  ObjectConfig config;
  config.num_objects = 400;
  config.domain = 60;  // small domain -> duplicate bindings for memo
  ASSERT_TRUE(RegisterObjects(&db, config).ok());

  Result<TablePtr> base = db.Query(kSkybandSql);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  IcebergReport report;
  Result<TablePtr> smart = db.QueryIceberg(kSkybandSql, IcebergOptions::All(),
                                           &report);
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  EXPECT_TRUE(report.used_nljp) << report.ToString();
  ExpectSameResult(*base, *smart);
  EXPECT_GT((*base)->num_rows(), 0u);
}

TEST(Smoke, SkybandEveryOptionCombination) {
  Database db;
  ObjectConfig config;
  config.num_objects = 250;
  config.domain = 40;
  ASSERT_TRUE(RegisterObjects(&db, config).ok());

  Result<TablePtr> base = db.Query(kSkybandSql);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  for (int mask = 0; mask < 8; ++mask) {
    IcebergOptions options =
        IcebergOptions::Only(mask & 1, mask & 2, mask & 4);
    Result<TablePtr> smart = db.QueryIceberg(kSkybandSql, options);
    ASSERT_TRUE(smart.ok()) << smart.status().ToString();
    ExpectSameResult(*base, *smart);
  }
}

TEST(Smoke, MarketBasketApriori) {
  Database db;
  ASSERT_TRUE(
      db.CreateTable("basket", Schema({{"bid", DataType::kInt64},
                                       {"item", DataType::kInt64}}))
          .ok());
  ASSERT_TRUE(db.DeclareKey("basket", {"bid", "item"}).ok());
  // 3 baskets; items 1,2 co-occur 3 times; item 9 appears once.
  int data[][2] = {{1, 1}, {1, 2}, {1, 9}, {2, 1}, {2, 2},
                   {3, 1}, {3, 2}, {3, 5}};
  for (auto& d : data) {
    ASSERT_TRUE(
        db.Insert("basket", {Value::Int(d[0]), Value::Int(d[1])}).ok());
  }
  const char* sql =
      "SELECT i1.item, i2.item FROM basket i1, basket i2 "
      "WHERE i1.bid = i2.bid AND i1.item < i2.item "
      "GROUP BY i1.item, i2.item HAVING COUNT(*) >= 3";
  Result<TablePtr> base = db.Query(sql);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_EQ((*base)->num_rows(), 1u);  // only the pair (1, 2)

  IcebergReport report;
  Result<TablePtr> smart =
      db.QueryIceberg(sql, IcebergOptions::All(), &report);
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  ExpectSameResult(*base, *smart);
  // The a-priori reducer must have fired (items with frequency < 3 are
  // discarded before the join).
  EXPECT_FALSE(report.reductions.empty()) << report.ToString();
}

TEST(Smoke, PairsQueryWithCte) {
  Database db;
  ObjectConfig config;
  config.num_objects = 120;
  config.domain = 25;
  ASSERT_TRUE(RegisterObjects(&db, config).ok());
  // A two-block query in the pairs style: the CTE groups objects by (x),
  // the main block runs a skyband over the aggregates.
  const char* sql =
      "WITH agg AS (SELECT x, COUNT(*) AS n, MAX(y) AS my FROM object o1 "
      "  GROUP BY x HAVING COUNT(*) >= 2) "
      "SELECT L.x, COUNT(*) FROM agg L, agg R "
      "WHERE L.n <= R.n AND L.my <= R.my AND (L.n < R.n OR L.my < R.my) "
      "GROUP BY L.x HAVING COUNT(*) <= 5";
  Result<TablePtr> base = db.Query(sql);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  Result<TablePtr> smart = db.QueryIceberg(sql);
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  ExpectSameResult(*base, *smart);
}

}  // namespace
}  // namespace iceberg
