// Randomized cross-engine property tests: on pseudo-random schemas, data,
// and iceberg queries, every engine configuration (baseline sequential,
// Vendor A parallel, Smart-Iceberg with each technique subset, the static
// memoization rewrite when applicable) must return identical results.
// This is the repository's strongest end-to-end invariant.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/engine/database.h"
#include "src/rewrite/memo_rewrite.h"

namespace iceberg {
namespace {

/// Deterministic xorshift-style generator (no global RNG state).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 2654435761u + 1) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  int Int(int lo, int hi) {  // inclusive
    return lo + static_cast<int>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[Next() % items.size()];
  }

 private:
  uint64_t state_;
};

void ExpectSame(const TablePtr& a, const TablePtr& b,
                const std::string& context) {
  ASSERT_EQ(a->num_rows(), b->num_rows()) << context;
  std::vector<Row> ra = a->rows(), rb = b->rows();
  std::sort(ra.begin(), ra.end(), RowLess());
  std::sort(rb.begin(), rb.end(), RowLess());
  for (size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(CompareRows(ra[i], rb[i]), 0)
        << context << "\nrow " << i << ": " << RowToString(ra[i]) << " vs "
        << RowToString(rb[i]);
  }
}

/// One random scenario: a table rel(k, g, x, y) with a declared key, a
/// random self-join iceberg query, compared across every configuration.
void RunScenario(uint64_t seed) {
  Rng rng(seed);
  Database db;
  ASSERT_TRUE(db.CreateTable("rel", Schema({{"k", DataType::kInt64},
                                            {"g", DataType::kInt64},
                                            {"x", DataType::kInt64},
                                            {"y", DataType::kInt64}}))
                  .ok());
  ASSERT_TRUE(db.DeclareKey("rel", {"k"}).ok());
  const int rows = rng.Int(50, 220);
  const int domain = rng.Int(4, 40);
  for (int i = 0; i < rows; ++i) {
    ASSERT_TRUE(db.Insert("rel", {Value::Int(i),
                                  Value::Int(rng.Int(0, 7)),
                                  Value::Int(rng.Int(0, domain)),
                                  Value::Int(rng.Int(0, domain))})
                    .ok());
  }
  if (rng.Int(0, 1) == 1) {
    ASSERT_TRUE(db.CreateOrderedIndex("rel", {"x", "y"}).ok());
    ASSERT_TRUE(db.CreateHashIndex("rel", {"k"}).ok());
  }

  // Random join condition over (x, y).
  std::vector<std::string> joins = {
      "a.x <= b.x AND a.y <= b.y",
      "a.x <= b.x AND a.y <= b.y AND (a.x < b.x OR a.y < b.y)",
      "a.x < b.x",
      "a.x = b.x AND a.y <= b.y",
      "a.x + a.y <= b.x + b.y",
      "a.x <= b.x AND a.y >= b.y",
      "a.g = b.g AND a.x < b.x",
  };
  // Random grouping: by the key or by a non-key column.
  std::vector<std::string> groups = {"a.k", "a.g"};
  // Random HAVING over inner-side aggregates.
  std::vector<std::string> havings = {
      "COUNT(*) <= @", "COUNT(*) >= @", "SUM(b.x) >= @", "MAX(b.y) <= @",
      "MIN(b.x) >= @", "COUNT(*) >= @ AND MAX(b.x) >= @",
  };
  std::string group = rng.Pick(groups);
  std::string having = rng.Pick(havings);
  int threshold = rng.Int(1, having.find("SUM") != std::string::npos
                                 ? domain * 8
                                 : (having.find("MAX") != std::string::npos ||
                                    having.find("MIN") != std::string::npos
                                        ? domain
                                        : rows / 3 + 2));
  size_t pos;
  while ((pos = having.find('@')) != std::string::npos) {
    having.replace(pos, 1, std::to_string(threshold));
  }
  std::string sql = "SELECT " + group + ", COUNT(*), MAX(b.y) FROM rel a, "
                    "rel b WHERE " + rng.Pick(joins) + " GROUP BY " + group +
                    " HAVING " + having;

  Result<TablePtr> base = db.Query(sql);
  ASSERT_TRUE(base.ok()) << base.status().ToString() << "\n" << sql;

  Result<TablePtr> vendor = db.Query(sql, ExecOptions::VendorA());
  ASSERT_TRUE(vendor.ok());
  ExpectSame(*base, *vendor, "vendorA: " + sql);

  ExecOptions no_index;
  no_index.use_indexes = false;
  Result<TablePtr> unindexed = db.Query(sql, no_index);
  ASSERT_TRUE(unindexed.ok());
  ExpectSame(*base, *unindexed, "no-index: " + sql);

  for (int mask = 1; mask < 8; ++mask) {
    IcebergOptions options =
        IcebergOptions::Only(mask & 1, mask & 2, mask & 4);
    options.binding_order = rng.Int(0, 1) == 0 ? BindingOrder::kNatural
                                               : BindingOrder::kSortedDesc;
    options.cache_index = rng.Int(0, 1) == 1;
    Result<TablePtr> smart = db.QueryIceberg(sql, options);
    ASSERT_TRUE(smart.ok()) << smart.status().ToString() << "\n" << sql;
    ExpectSame(*base, *smart,
               "mask=" + std::to_string(mask) + ": " + sql);
  }

  // Static memo rewrite, when its conditions hold.
  Result<QueryBlock> block = db.Prepare(sql);
  ASSERT_TRUE(block.ok());
  TablePartition part;
  part.left = {0};
  part.right = {1};
  Result<IcebergView> view = AnalyzeIceberg(*block, part);
  ASSERT_TRUE(view.ok());
  Result<MemoRewriteResult> rewrite = ExecuteStaticMemoRewrite(*view);
  if (rewrite.ok()) {
    ExpectSame(*base, rewrite->result, "static-rewrite: " + sql);
  }
}

class RandomizedEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomizedEquivalence, AllEnginesAgree) { RunScenario(GetParam()); }

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedEquivalence,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace iceberg
