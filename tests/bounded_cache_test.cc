// Tests for the bounded NLJP cache (FIFO replacement) — the paper's
// Section 7 future-work item. Eviction must never change results, only
// trade memory for re-evaluation.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/engine/database.h"
#include "src/workload/object.h"

namespace iceberg {
namespace {

void ExpectSame(const TablePtr& a, const TablePtr& b) {
  ASSERT_EQ(a->num_rows(), b->num_rows());
  std::vector<Row> ra = a->rows(), rb = b->rows();
  std::sort(ra.begin(), ra.end(), RowLess());
  std::sort(rb.begin(), rb.end(), RowLess());
  for (size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(CompareRows(ra[i], rb[i]), 0);
  }
}

constexpr char kSkyband[] =
    "SELECT L.id, COUNT(*) FROM object L, object R "
    "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
    "GROUP BY L.id HAVING COUNT(*) <= 12";

class BoundedCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ObjectConfig cfg;
    cfg.num_objects = 400;
    cfg.domain = 30;  // duplicate-rich
    ASSERT_TRUE(RegisterObjects(&db_, cfg).ok());
    base_ = *db_.Query(kSkyband);
  }
  Database db_;
  TablePtr base_;
};

TEST_F(BoundedCacheTest, TinyCacheStillCorrect) {
  for (size_t bound : {1u, 2u, 8u, 64u}) {
    IcebergOptions options = IcebergOptions::All();
    options.max_cache_entries = bound;
    IcebergReport report;
    auto smart = db_.QueryIceberg(kSkyband, options, &report);
    ASSERT_TRUE(smart.ok()) << smart.status().ToString();
    ExpectSame(base_, *smart);
    EXPECT_LE(report.nljp_stats.cache_entries, bound)
        << "bound=" << bound;
  }
}

TEST_F(BoundedCacheTest, EvictionsReportedAndWorkIncreases) {
  IcebergOptions unbounded = IcebergOptions::All();
  IcebergReport full_report;
  ASSERT_TRUE(db_.QueryIceberg(kSkyband, unbounded, &full_report).ok());
  EXPECT_EQ(full_report.nljp_stats.cache_evictions, 0u);

  IcebergOptions bounded = IcebergOptions::All();
  bounded.max_cache_entries = 4;
  IcebergReport small_report;
  ASSERT_TRUE(db_.QueryIceberg(kSkyband, bounded, &small_report).ok());
  EXPECT_GT(small_report.nljp_stats.cache_evictions, 0u);
  // Fewer cached witnesses -> less pruning/memoization -> more inner work.
  EXPECT_GE(small_report.nljp_stats.inner_evaluations,
            full_report.nljp_stats.inner_evaluations);
}

TEST_F(BoundedCacheTest, MemoOnlyWithBoundStillCorrect) {
  IcebergOptions options = IcebergOptions::Only(false, true, false);
  options.max_cache_entries = 16;
  auto smart = db_.QueryIceberg(kSkyband, options);
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  ExpectSame(base_, *smart);
}

TEST_F(BoundedCacheTest, PruneOnlyWithBoundStillCorrect) {
  IcebergOptions options = IcebergOptions::Only(false, false, true);
  options.max_cache_entries = 3;
  auto smart = db_.QueryIceberg(kSkyband, options);
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  ExpectSame(base_, *smart);
}

TEST_F(BoundedCacheTest, MonotoneQueryWithBound) {
  const char* sql =
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x AND L.y <= R.y GROUP BY L.id "
      "HAVING COUNT(*) >= 40";
  auto base = db_.Query(sql);
  ASSERT_TRUE(base.ok());
  IcebergOptions options = IcebergOptions::All();
  options.max_cache_entries = 5;
  auto smart = db_.QueryIceberg(sql, options);
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  ExpectSame(*base, *smart);
}

}  // namespace
}  // namespace iceberg
