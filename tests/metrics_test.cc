// Tests for the observability layer: the metrics registry (counters,
// gauges, log-scale histograms, snapshot/diff/reset) and the tracing
// subsystem (span recording, Chrome trace_event export, the disabled-path
// contract). The concurrency tests run under the tsan preset.

#include "src/obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/trace.h"
#include "tests/json_check.h"

namespace iceberg {
namespace {

using iceberg::testing::IsValidJson;

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetMaxConvergesToMaximum) {
  Gauge g;
  g.Set(10);
  g.SetMax(5);
  EXPECT_EQ(g.value(), 10);
  g.SetMax(99);
  EXPECT_EQ(g.value(), 99);
}

TEST(HistogramTest, LogBucketsAndPercentiles) {
  Histogram h;
  // 100 observations of 10 (bucket [8,16), upper bound 15) and one of 1000.
  for (int i = 0; i < 100; ++i) h.Record(10);
  h.Record(1000);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 101u);
  EXPECT_EQ(s.sum, 100u * 10 + 1000);
  EXPECT_NEAR(s.Mean(), static_cast<double>(s.sum) / 101.0, 1e-9);
  // p50 lands in the bucket of 10 ([8,16)); rank 50 of the 100 observations
  // there interpolates to 8 + 0.5 * 8 = 12.
  EXPECT_EQ(s.Percentile(50), 12u);
  // p100 is the sole observation in [512, 1024): frac = 1.0 caps at the
  // bucket's inclusive upper bound.
  EXPECT_EQ(s.Percentile(100), 1023u);
  h.Reset();
  EXPECT_EQ(h.Snapshot().count, 0u);
}

TEST(HistogramTest, PercentileInterpolationErrorBounded) {
  // Uniform 1..1000: interpolation keeps the relative error well under the
  // 25% budget that log-scale bucketing alone cannot guarantee (a pure
  // upper-bound estimate is off by up to ~2x at bucket bottoms).
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  HistogramSnapshot s = h.Snapshot();
  // True p50 = 500, p99 = 990.
  EXPECT_NEAR(static_cast<double>(s.Percentile(50)), 500.0, 0.25 * 500.0);
  EXPECT_NEAR(static_cast<double>(s.Percentile(99)), 990.0, 0.25 * 990.0);

  // Point mass at 10 (mid-bucket of [8,16)): p50 interpolates to 12, a 20%
  // error, where the old upper-bound estimate returned 15 (50% off). Tail
  // percentiles of a point mass still pay the bucket-resolution cost; the
  // 25% budget is pinned for the median, which drives the \queries table.
  Histogram point;
  for (int i = 0; i < 1000; ++i) point.Record(10);
  HistogramSnapshot ps = point.Snapshot();
  EXPECT_NEAR(static_cast<double>(ps.Percentile(50)), 10.0, 2.5);
}

TEST(HistogramTest, ZeroGoesToFirstBucket) {
  Histogram h;
  h.Record(0);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.buckets[0], 1u);
}

TEST(RegistryTest, StablePointersAndSnapshot) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c1 = reg.GetCounter("test.registry.counter");
  Counter* c2 = reg.GetCounter("test.registry.counter");
  EXPECT_EQ(c1, c2);  // same name -> same handle
  c1->Reset();
  c1->Add(7);
  reg.GetGauge("test.registry.gauge")->Set(-3);
  reg.GetHistogram("test.registry.hist")->Record(100);

  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("test.registry.counter"), 7u);
  EXPECT_EQ(snap.gauges.at("test.registry.gauge"), -3);
  EXPECT_GE(snap.histograms.at("test.registry.hist").count, 1u);
}

TEST(RegistryTest, DiffSinceIsolatesARun) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test.diff.counter");
  Histogram* h = reg.GetHistogram("test.diff.hist");
  c->Add(100);
  h->Record(50);

  MetricsSnapshot before = reg.Snapshot();
  c->Add(23);
  h->Record(50);
  h->Record(50);
  reg.GetGauge("test.diff.gauge")->Set(11);
  MetricsSnapshot delta = reg.Snapshot().DiffSince(before);

  EXPECT_EQ(delta.counters.at("test.diff.counter"), 23u);
  EXPECT_EQ(delta.histograms.at("test.diff.hist").count, 2u);
  EXPECT_EQ(delta.histograms.at("test.diff.hist").sum, 100u);
  // Gauges are instantaneous: the diff keeps the current value.
  EXPECT_EQ(delta.gauges.at("test.diff.gauge"), 11);
}

TEST(RegistryTest, MacroCachesHandle) {
  Counter* a = ICEBERG_COUNTER("test.macro.counter");
  Counter* b = ICEBERG_COUNTER("test.macro.counter");
  EXPECT_EQ(a, b);
  a->Reset();
  a->Increment();
  EXPECT_EQ(b->value(), 1u);
}

TEST(RegistryTest, RenderTextAndJson) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test.render.counter")->Add(5);
  std::string text = reg.RenderText();
  EXPECT_NE(text.find("test.render.counter"), std::string::npos);
  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"test.render.counter\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain.name"), "plain.name");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonEscape("line\nfeed"), "line\\nfeed");
  EXPECT_EQ(JsonEscape(std::string("nul\x01mid")), "nul\\u0001mid");
}

TEST(RegistryTest, ToJsonIsValidWithHostileMetricNames) {
  // Metric names are free-form strings; a name carrying quotes,
  // backslashes, or control characters must not corrupt the JSON
  // document. (Nothing in the repo names metrics like this, but the
  // exporter must not rely on that.)
  MetricsRegistry& reg = MetricsRegistry::Global();
  const std::string hostile = "test.esc.\"quoted\"\\back\nslash";
  reg.GetCounter(hostile)->Add(3);
  reg.GetGauge("test.esc.gauge\twith\ttabs")->Set(-7);
  reg.GetHistogram("test.esc.hist")->Record(42);

  std::string json = reg.Snapshot().ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  // The hostile name round-trips: its escaped form appears as a key.
  EXPECT_NE(json.find("test.esc.\\\"quoted\\\"\\\\back\\nslash"),
            std::string::npos);
  // No raw (unescaped) control characters anywhere in the document.
  for (char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(RegistryTest, ConcurrentIncrementsAreExactAtEightThreads) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test.concurrent.counter");
  Histogram* h = reg.GetHistogram("test.concurrent.hist");
  Gauge* g = reg.GetGauge("test.concurrent.gauge");
  c->Reset();
  h->Reset();
  g->Reset();

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (int i = 0; i < kOpsPerThread; ++i) {
        c->Increment();
        h->Record(static_cast<uint64_t>(i & 255));
        g->SetMax(t * kOpsPerThread + i);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  // Counts are exact at quiescence, at any thread count.
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kOpsPerThread);
  HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
  EXPECT_EQ(g->value(), (kThreads - 1) * kOpsPerThread + kOpsPerThread - 1);
}

TEST(TraceTest, DisabledSpanRecordsNothing) {
  SetTraceEnabled(false);
  ClearTrace();
  { TraceSpan span("test.disabled", "test"); }
  EXPECT_TRUE(SnapshotTrace().empty());
}

TEST(TraceTest, EnabledSpanRecordsOneEvent) {
  SetTraceEnabled(true);
  ClearTrace();
  { TraceSpan span("test.enabled", "test"); }
  std::vector<TraceEvent> events = SnapshotTrace();
  SetTraceEnabled(false);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.enabled");
  EXPECT_STREQ(events[0].cat, "test");
  EXPECT_GE(events[0].dur_us, 0);
  ClearTrace();
}

TEST(TraceTest, EndIsIdempotent) {
  SetTraceEnabled(true);
  ClearTrace();
  {
    TraceSpan span("test.end", "test");
    span.End();
    span.End();  // second End and the destructor must both be no-ops
  }
  EXPECT_EQ(SnapshotTrace().size(), 1u);
  SetTraceEnabled(false);
  ClearTrace();
}

TEST(TraceTest, ChromeJsonIsWellFormed) {
  SetTraceEnabled(true);
  ClearTrace();
  { TraceSpan span("test.json", "test"); }
  std::string json = TraceToChromeJson(SnapshotTrace());
  SetTraceEnabled(false);
  ClearTrace();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.json\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceTest, BufferLimitRingsAndCountsDrops) {
  size_t prev_limit = TraceBufferLimit();
  SetTraceBufferLimit(16);
  SetTraceEnabled(true);
  ClearTrace();
  Counter* dropped = ICEBERG_COUNTER("trace.events_dropped");
  uint64_t dropped_before = dropped->value();
  for (int i = 0; i < 100; ++i) {
    TraceSpan span("test.ring", "test");
  }
  std::vector<TraceEvent> events = SnapshotTrace();
  SetTraceEnabled(false);
  ClearTrace();
  SetTraceBufferLimit(prev_limit);
  // The per-thread buffer holds only the most recent `limit` spans; every
  // overwritten span is accounted for in trace.events_dropped.
  EXPECT_EQ(events.size(), 16u);
  EXPECT_EQ(dropped->value() - dropped_before, 100u - 16u);
}

TEST(TraceTest, UnboundedWhenLimitIsZero) {
  size_t prev_limit = TraceBufferLimit();
  SetTraceBufferLimit(0);
  SetTraceEnabled(true);
  ClearTrace();
  for (int i = 0; i < 100; ++i) {
    TraceSpan span("test.unbounded", "test");
  }
  std::vector<TraceEvent> events = SnapshotTrace();
  SetTraceEnabled(false);
  ClearTrace();
  SetTraceBufferLimit(prev_limit);
  EXPECT_EQ(events.size(), 100u);
}

TEST(TraceTest, ConcurrentSpansAllRecorded) {
  SetTraceEnabled(true);
  ClearTrace();
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 1000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([]() {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("test.concurrent", "test");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  std::vector<TraceEvent> events = SnapshotTrace();
  SetTraceEnabled(false);
  ClearTrace();
  EXPECT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
}

}  // namespace
}  // namespace iceberg
