// Shape-keyed plan & program cache: shape-hardening differentials,
// PlanCache unit behavior (verification, LRU, invalidation), session-level
// hit/miss/replay provenance, byte-identical cached-vs-uncached results
// across literal re-bindings, thread counts and both execution engines,
// and a chaos soak with the cache enabled (tsan-labelled binary).

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "src/exec/exec_options.h"
#include "src/expr/compiled.h"
#include "src/obs/metrics.h"
#include "src/optimizer/iceberg_optimizer.h"
#include "src/server/chaos.h"
#include "src/server/plan_cache.h"
#include "src/server/session.h"
#include "src/common/shape.h"

namespace iceberg {
namespace {

/// Installs a chaos schedule for one test and clears it on exit.
struct ChaosGuard {
  explicit ChaosGuard(ChaosConfig config) {
    ChaosSchedule::SetGlobal(config);
  }
  ~ChaosGuard() { ChaosSchedule::SetGlobal(ChaosConfig{}); }
};

/// Forces the plan cache on/off for one test and restores the previous
/// state (plus cold program templates) on exit.
struct ScopedPlanCache {
  explicit ScopedPlanCache(bool enabled) : prev(PlanCacheEnabled()) {
    SetPlanCacheEnabled(enabled);
    ClearProgramTemplateCache();
  }
  ~ScopedPlanCache() {
    SetPlanCacheEnabled(prev);
    ClearProgramTemplateCache();
  }
  bool prev;
};

std::string CanonicalRender(const TablePtr& table) {
  std::vector<Row> rows = table->rows();
  std::sort(rows.begin(), rows.end(), RowLess{});
  std::string out;
  for (const Row& row : rows) {
    out += RowToString(row);
    out += '\n';
  }
  return out;
}

Database MakeDb() {
  Database db;
  EXPECT_TRUE(db.CreateTable("obj", Schema({{"id", DataType::kInt64},
                                            {"x", DataType::kInt64},
                                            {"y", DataType::kInt64}}))
                  .ok());
  EXPECT_TRUE(db.DeclareKey("obj", {"id"}).ok());
  for (int64_t i = 0; i < 24; ++i) {
    EXPECT_TRUE(db.Insert("obj", {Value::Int(i), Value::Int((i * 13) % 7),
                                  Value::Int((i * 5) % 11)})
                    .ok());
  }
  return db;
}

const char kSkyline[] =
    "SELECT L.id, COUNT(*) FROM obj L, obj R "
    "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
    "GROUP BY L.id HAVING COUNT(*) <= 50";
const char kSkylineRebound[] =
    "SELECT L.id, COUNT(*) FROM obj L, obj R "
    "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
    "GROUP BY L.id HAVING COUNT(*) <= 12";

// ---------------------------------------------------------------------------
// Shape hardening differentials
// ---------------------------------------------------------------------------

TEST(ShapeHardeningTest, ExponentFloatsAreOneLiteral) {
  QueryShape a = ComputeQueryShape("SELECT x FROM t WHERE x > 1e-3");
  QueryShape b = ComputeQueryShape("SELECT x FROM t WHERE x > 2.5E+7");
  EXPECT_EQ(a.shape, "select x from t where x > ?");
  EXPECT_EQ(a.shape_hash, b.shape_hash);
  EXPECT_NE(a.fingerprint, b.fingerprint);
  ASSERT_EQ(a.literals.size(), 1u);
  EXPECT_EQ(a.literals[0].text, "1e-3");
  EXPECT_EQ(a.literals[0].kind, ShapeLiteral::kDouble);
}

TEST(ShapeHardeningTest, NegativeLiteralAfterOperatorAbsorbsSign) {
  QueryShape a = ComputeQueryShape("SELECT x FROM t WHERE x > -5");
  QueryShape b = ComputeQueryShape("SELECT x FROM t WHERE x > -71");
  EXPECT_EQ(a.shape, "select x from t where x > ?");
  EXPECT_EQ(a.shape_hash, b.shape_hash);
  ASSERT_EQ(a.literals.size(), 1u);
  EXPECT_EQ(a.literals[0].text, "-5");
}

TEST(ShapeHardeningTest, BinaryMinusIsNotASign) {
  // After an identifier or literal, '-' is subtraction: two literal slots.
  QueryShape a = ComputeQueryShape("SELECT 3 - 4 FROM t");
  EXPECT_EQ(a.shape, "select ? - ? from t");
  ASSERT_EQ(a.literals.size(), 2u);
  EXPECT_EQ(a.literals[0].text, "3");
  EXPECT_EQ(a.literals[1].text, "4");
  QueryShape b = ComputeQueryShape("SELECT x FROM t WHERE x - 5 > 0");
  EXPECT_EQ(b.shape, "select x from t where x - ? > ?");
}

TEST(ShapeHardeningTest, EscapedQuotesStayInsideOneStringLiteral) {
  QueryShape a = ComputeQueryShape("SELECT x FROM t WHERE s = 'it''s'");
  QueryShape b = ComputeQueryShape("SELECT x FROM t WHERE s = 'plain'");
  EXPECT_EQ(a.shape, "select x from t where s = ?");
  EXPECT_EQ(a.shape_hash, b.shape_hash);
  ASSERT_EQ(a.literals.size(), 1u);
  EXPECT_EQ(a.literals[0].text, "'it''s'");
  EXPECT_EQ(a.literals[0].kind, ShapeLiteral::kString);
  // The quote must not leak: a trailing predicate is still normalized.
  QueryShape c = ComputeQueryShape("SELECT x FROM t WHERE s = 'a''b' AND X>1");
  EXPECT_EQ(c.shape, "select x from t where s = ? and x>?");
}

TEST(ShapeHardeningTest, InListRunsCollapseToOneSlot) {
  QueryShape a = ComputeQueryShape("SELECT x FROM t WHERE x IN (1, 2, 3)");
  QueryShape b = ComputeQueryShape("SELECT x FROM t WHERE x IN (4,5)");
  EXPECT_EQ(a.shape, "select x from t where x in (?)");
  EXPECT_EQ(a.shape_hash, b.shape_hash);
  EXPECT_NE(a.fingerprint, b.fingerprint);
  ASSERT_EQ(a.literals.size(), 3u);
  EXPECT_EQ(a.literals[1].text, "2");
  ASSERT_EQ(b.literals.size(), 2u);
  // Mixed-sign runs collapse too.
  QueryShape c = ComputeQueryShape("SELECT x FROM t WHERE x IN (-1, 2)");
  EXPECT_EQ(c.shape, "select x from t where x in (?)");
  ASSERT_EQ(c.literals.size(), 2u);
  EXPECT_EQ(c.literals[0].text, "-1");
}

// ---------------------------------------------------------------------------
// Block shape guard
// ---------------------------------------------------------------------------

TEST(BlockShapeGuardTest, StableAcrossLiteralsDistinctAcrossStructure) {
  Database db = MakeDb();
  Result<QueryBlock> a = db.Prepare(kSkyline);
  Result<QueryBlock> b = db.Prepare(kSkylineRebound);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(BlockShapeGuard(*a), BlockShapeGuard(*b))
      << "guard must not depend on literal values";
  Result<QueryBlock> c = db.Prepare("SELECT id FROM obj WHERE x > 2");
  ASSERT_TRUE(c.ok());
  EXPECT_NE(BlockShapeGuard(*a), BlockShapeGuard(*c));
}

// ---------------------------------------------------------------------------
// PlanCache unit behavior
// ---------------------------------------------------------------------------

std::shared_ptr<const PlanTrace> MakeTrace(uint64_t guard) {
  auto t = std::make_shared<PlanTrace>();
  t->block_guard = guard;
  t->captured = true;
  return t;
}

TEST(PlanCacheTest, LookupVerifiesShapeText) {
  PlanCache cache(4);
  PlanCache::Key key{1, 2, 3};
  EXPECT_EQ(cache.Lookup(key, "select ?"), nullptr);
  cache.Insert(key, "select ?", MakeTrace(7));
  ASSERT_NE(cache.Lookup(key, "select ?"), nullptr);
  EXPECT_EQ(cache.Lookup(key, "select ? + ?"), nullptr)
      << "a shape-hash collision must degrade to a miss, not a wrong trace";
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTest, UncapturedTracesAreRejected) {
  PlanCache cache(4);
  auto t = std::make_shared<PlanTrace>();  // captured == false
  cache.Insert(PlanCache::Key{1, 2, 3}, "s", t);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  PlanCache::Key k1{1, 0, 0}, k2{2, 0, 0}, k3{3, 0, 0};
  cache.Insert(k1, "s1", MakeTrace(1));
  cache.Insert(k2, "s2", MakeTrace(2));
  // Touch k1 so k2 becomes the LRU victim.
  ASSERT_NE(cache.Lookup(k1, "s1"), nullptr);
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  cache.Insert(k3, "s3", MakeTrace(3));
  MetricsSnapshot delta =
      MetricsRegistry::Global().Snapshot().DiffSince(before);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(delta.counters["plan_cache.evictions"], 1u);
  EXPECT_NE(cache.Lookup(k1, "s1"), nullptr);
  EXPECT_EQ(cache.Lookup(k2, "s2"), nullptr) << "k2 was the LRU";
  EXPECT_NE(cache.Lookup(k3, "s3"), nullptr);
}

TEST(PlanCacheTest, CatalogRotationInvalidatesShape) {
  PlanCache cache(8);
  PlanCache::Key v1{42, /*catalog=*/100, 7};
  cache.Insert(v1, "s", MakeTrace(1));
  ASSERT_NE(cache.Lookup(v1, "s"), nullptr);
  // Same shape + options under a new catalog version: inserting drops the
  // stale generation and counts an invalidation.
  PlanCache::Key v2{42, /*catalog=*/200, 7};
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  cache.Insert(v2, "s", MakeTrace(1));
  MetricsSnapshot delta =
      MetricsRegistry::Global().Snapshot().DiffSince(before);
  EXPECT_EQ(delta.counters["plan_cache.invalidations"], 1u);
  EXPECT_EQ(cache.Lookup(v1, "s"), nullptr) << "stale generation dropped";
  EXPECT_NE(cache.Lookup(v2, "s"), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTest, OptionsFingerprintSeparatesConfigurations) {
  IcebergOptions all = IcebergOptions::All();
  IcebergOptions none = IcebergOptions::None();
  EXPECT_NE(PlanOptionsFingerprint(all), PlanOptionsFingerprint(none));
  IcebergOptions no_prune = IcebergOptions::All();
  no_prune.enable_prune = false;
  EXPECT_NE(PlanOptionsFingerprint(all), PlanOptionsFingerprint(no_prune));
  // Per-attempt knobs must not affect the key.
  IcebergOptions threaded = IcebergOptions::All();
  threaded.base_exec.num_threads = 8;
  EXPECT_EQ(PlanOptionsFingerprint(all), PlanOptionsFingerprint(threaded));
}

// ---------------------------------------------------------------------------
// Session-level hit/miss/invalidation and provenance
// ---------------------------------------------------------------------------

TEST(SessionPlanCacheTest, MissThenHitThenInvalidation) {
  ScopedPlanCache cache_on(true);
  Database db = MakeDb();
  ServerConfig config;
  config.retry = RetryPolicy::None();
  IcebergServer server(&db, config);
  auto session = server.OpenSession();

  MetricsSnapshot s0 = MetricsRegistry::Global().Snapshot();
  QueryOutcome first = session->Execute(kSkyline);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_EQ(first.report.plan_provenance, "miss");
  EXPECT_EQ(server.plan_cache().size(), 1u);

  QueryOutcome second = session->Execute(kSkyline);
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.report.plan_provenance, "hit");
  MetricsSnapshot d1 = MetricsRegistry::Global().Snapshot().DiffSince(s0);
  EXPECT_GE(d1.counters["plan_cache.hits"], 1u);
  EXPECT_GE(d1.counters["plan_cache.misses"], 1u);
  EXPECT_EQ(CanonicalRender(first.table), CanonicalRender(second.table));

  // A hit must skip the optimizer searches: the pick phases collapse.
  EXPECT_LE(second.report.timing.apriori_pick_us,
            std::max<int64_t>(first.report.timing.apriori_pick_us, 1));

  // Mutation rotates the catalog hash: next run misses, and its insert
  // retires the stale generation.
  ASSERT_TRUE(
      server.Insert("obj", {Value::Int(100), Value::Int(2), Value::Int(3)})
          .ok());
  MetricsSnapshot s1 = MetricsRegistry::Global().Snapshot();
  QueryOutcome third = session->Execute(kSkyline);
  ASSERT_TRUE(third.status.ok());
  EXPECT_EQ(third.report.plan_provenance, "miss");
  MetricsSnapshot d2 = MetricsRegistry::Global().Snapshot().DiffSince(s1);
  EXPECT_GE(d2.counters["plan_cache.invalidations"], 1u);
}

TEST(SessionPlanCacheTest, LiteralReboundHitMatchesUncached) {
  // Capture on one literal binding, replay on another; the replayed plan
  // must compute exactly what an uncached run computes.
  std::string expected_rebound;
  {
    ScopedPlanCache cache_off(false);
    Database db = MakeDb();
    IcebergServer server(&db);
    auto session = server.OpenSession();
    QueryOutcome reference = session->Execute(kSkylineRebound);
    ASSERT_TRUE(reference.status.ok());
    EXPECT_TRUE(reference.report.plan_provenance.empty())
        << "disabled cache must not be consulted";
    expected_rebound = CanonicalRender(reference.table);
  }
  ScopedPlanCache cache_on(true);
  Database db = MakeDb();
  IcebergServer server(&db);
  auto session = server.OpenSession();
  QueryOutcome warmup = session->Execute(kSkyline);
  ASSERT_TRUE(warmup.status.ok());
  EXPECT_EQ(warmup.report.plan_provenance, "miss");
  QueryOutcome rebound = session->Execute(kSkylineRebound);
  ASSERT_TRUE(rebound.status.ok());
  EXPECT_EQ(rebound.report.plan_provenance, "hit")
      << "same shape, different literals must replay the trace";
  EXPECT_EQ(CanonicalRender(rebound.table), expected_rebound);
}

TEST(SessionPlanCacheTest, CteStatementsBypassTheCache) {
  ScopedPlanCache cache_on(true);
  Database db = MakeDb();
  IcebergServer server(&db);
  auto session = server.OpenSession();
  QueryOutcome outcome = session->Execute(
      "WITH w AS (SELECT id, x, y FROM obj) SELECT id FROM w WHERE x > 1");
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.report.plan_provenance, "bypass");
  EXPECT_EQ(server.plan_cache().size(), 0u);
}

TEST(SessionPlanCacheTest, WrongTraceFallsBackToFullPlan) {
  ScopedPlanCache cache_on(true);
  Database db = MakeDb();
  // Replay a trace whose guard cannot match: the optimizer must fall back
  // to a full plan (provenance "hit-fallback") and still be correct.
  PlanTrace bogus;
  bogus.block_guard = 0xdeadbeef;
  bogus.captured = true;
  IcebergOptions options = IcebergOptions::All();
  options.replay = &bogus;
  IcebergReport report;
  Result<TablePtr> replayed = db.QueryIceberg(kSkyline, options, &report);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(report.plan_provenance, "hit-fallback");
  Result<TablePtr> reference = db.QueryIceberg(kSkyline);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(CanonicalRender(*replayed), CanonicalRender(*reference));
}

TEST(SessionPlanCacheTest, ExplainAnalyzeRendersProvenance) {
  ScopedPlanCache cache_on(true);
  Database db = MakeDb();
  IcebergServer server(&db);
  auto session = server.OpenSession();
  const std::string sql = std::string("EXPLAIN ANALYZE ") + kSkyline;
  QueryOutcome cold = session->Execute(sql);
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  QueryOutcome warm = session->Execute(sql);
  ASSERT_TRUE(warm.status.ok());
  auto render = [](const TablePtr& t) {
    std::string out;
    for (const Row& row : t->rows()) out += RowToString(row) + "\n";
    return out;
  };
  EXPECT_NE(render(cold.table).find("plan_cache=miss"), std::string::npos)
      << render(cold.table);
  EXPECT_NE(render(warm.table).find("plan_cache=hit"), std::string::npos)
      << render(warm.table);
}

// ---------------------------------------------------------------------------
// Differential: cached vs uncached, across threads and engines
// ---------------------------------------------------------------------------

TEST(PlanCacheDifferentialTest, ByteIdenticalAcrossThreadsAndEngines) {
  const std::vector<std::string> statements = {
      kSkyline, kSkylineRebound, "SELECT id FROM obj WHERE x > 2",
      "SELECT L.id, COUNT(*) FROM obj L, obj R "
      "WHERE L.x <= R.x GROUP BY L.id HAVING COUNT(*) <= 12"};

  // Uncached reference, serial, scalar engine.
  std::map<std::string, std::string> expected;
  {
    ScopedPlanCache cache_off(false);
    Database db = MakeDb();
    IcebergServer server(&db);
    auto session = server.OpenSession();
    for (const std::string& sql : statements) {
      QueryOutcome outcome = session->Execute(sql);
      ASSERT_TRUE(outcome.status.ok()) << sql;
      expected[sql] = CanonicalRender(outcome.table);
    }
  }

  const bool vectorize_prev = VectorizedExecEnabled();
  for (bool vectorize : {false, true}) {
    SetVectorizedExecEnabled(vectorize);
    for (int threads : {1, 8}) {
      ScopedPlanCache cache_on(true);
      Database db = MakeDb();
      ServerConfig config;
      config.default_threads = threads;
      IcebergServer server(&db, config);
      auto session = server.OpenSession();
      for (int round = 0; round < 2; ++round) {  // cold then replayed
        for (const std::string& sql : statements) {
          QueryOutcome outcome = session->Execute(sql);
          ASSERT_TRUE(outcome.status.ok())
              << sql << " vectorize=" << vectorize << " threads=" << threads;
          EXPECT_EQ(CanonicalRender(outcome.table), expected[sql])
              << sql << " vectorize=" << vectorize << " threads=" << threads
              << " round=" << round;
        }
      }
    }
  }
  SetVectorizedExecEnabled(vectorize_prev);
}

// ---------------------------------------------------------------------------
// Concurrency: hot-shape storm and chaos soak with the cache enabled
// ---------------------------------------------------------------------------

TEST(PlanCacheConcurrencyTest, ConcurrentSessionsShareOneTrace) {
  ScopedPlanCache cache_on(true);
  Database db = MakeDb();
  ServerConfig config;
  config.admission.max_concurrent = 4;
  config.admission.max_queue_depth = 64;
  config.admission.queue_timeout_ms = 10000;
  IcebergServer server(&db, config);

  std::string expected;
  {
    auto session = server.OpenSession();
    QueryOutcome seed = session->Execute(kSkyline);
    ASSERT_TRUE(seed.status.ok());
    expected = CanonicalRender(seed.table);
  }

  constexpr int kSessions = 8;
  constexpr int kRounds = 4;
  std::mutex mu;
  std::vector<std::string> violations;
  std::vector<std::thread> threads;
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&] {
      auto session = server.OpenSession();
      for (int r = 0; r < kRounds; ++r) {
        QueryOutcome outcome = session->Execute(kSkyline);
        if (!outcome.status.ok() ||
            CanonicalRender(outcome.table) != expected) {
          std::lock_guard<std::mutex> lock(mu);
          violations.push_back(outcome.status.ToString());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(violations.empty()) << violations.size() << " violations";
  EXPECT_EQ(server.plan_cache().size(), 1u)
      << "one hot shape must occupy exactly one entry";
}

TEST(PlanCacheConcurrencyTest, ChaosSoakWithCacheKeepsResultsExact) {
  ScopedPlanCache cache_on(true);
  const std::vector<std::string> script = {kSkyline, kSkylineRebound,
                                           "SELECT id FROM obj WHERE x > 2"};
  std::map<std::string, std::string> expected;
  {
    Database db = MakeDb();
    IcebergServer server(&db);
    auto session = server.OpenSession();
    for (const std::string& sql : script) {
      QueryOutcome outcome = session->Execute(sql);
      ASSERT_TRUE(outcome.status.ok());
      expected[sql] = CanonicalRender(outcome.table);
    }
  }

  Database db = MakeDb();
  ServerConfig config;
  config.admission.max_concurrent = 2;
  config.admission.max_queue_depth = 32;
  config.admission.queue_timeout_ms = 10000;
  config.retry.max_attempts = 6;
  config.retry.initial_backoff_ms = 1;
  config.retry.max_backoff_ms = 4;
  IcebergServer server(&db, config);
  ChaosConfig chaos_config;
  chaos_config.seed = 2024;
  chaos_config.cancel_every = 2000;
  chaos_config.alloc_fail_every = 40;
  chaos_config.shed_storm_every = 300;
  chaos_config.delay_every = 200;
  chaos_config.delay_us = 5;
  ChaosGuard chaos(chaos_config);

  constexpr int kSessions = 4;
  std::mutex mu;
  std::vector<std::string> violations;
  std::vector<std::thread> threads;
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&] {
      auto session = server.OpenSession();
      for (int round = 0; round < 3; ++round) {
        for (const std::string& sql : script) {
          QueryOutcome outcome = session->Execute(sql);
          if (outcome.status.ok()) {
            if (CanonicalRender(outcome.table) != expected[sql]) {
              std::lock_guard<std::mutex> lock(mu);
              violations.push_back("wrong result under chaos: " + sql);
            }
          } else if (!outcome.status.IsRetryable()) {
            std::lock_guard<std::mutex> lock(mu);
            violations.push_back(outcome.status.ToString());
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty() ? "" : violations[0]);
}

}  // namespace
}  // namespace iceberg
