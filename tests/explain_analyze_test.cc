// EXPLAIN ANALYZE golden tests: the annotated operator tree must match the
// optimizer's chosen plan for a pruning+memoization query, and every number
// in the tree must reconcile exactly with the metrics-registry delta
// reported on the trailing `metrics:` line — at 1 thread and at 8 threads.

#include <cstdint>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "src/obs/metrics.h"
#include "src/workload/object.h"

namespace iceberg {
namespace {

// The paper's skyband query: pruning (dominated bindings are skipped via
// cached witnesses) and memoization (duplicate (x, y) bindings) both fire.
constexpr char kSkybandSql[] =
    "SELECT L.id, COUNT(*) FROM object L, object R "
    "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
    "GROUP BY L.id HAVING COUNT(*) <= 50";

std::unique_ptr<Database> MakeObjectDb(size_t objects) {
  auto db = std::make_unique<Database>();
  ObjectConfig config;
  config.num_objects = objects;
  EXPECT_TRUE(RegisterObjects(db.get(), config).ok());
  return db;
}

/// Flattens the one-column "QUERY PLAN" result into one newline-joined
/// string.
std::string PlanText(const TablePtr& table) {
  EXPECT_EQ(table->schema().num_columns(), 1u);
  EXPECT_EQ(table->schema().column(0).name, "QUERY PLAN");
  std::string out;
  for (const Row& row : table->rows()) {
    out += row[0].AsString();
    out += "\n";
  }
  return out;
}

/// Extracts the unsigned integer directly after `prefix` in `text`; fails
/// the test when the prefix is absent.
uint64_t NumberAfter(const std::string& text, const std::string& prefix) {
  size_t pos = text.find(prefix);
  EXPECT_NE(pos, std::string::npos) << "missing '" << prefix << "' in:\n"
                                    << text;
  if (pos == std::string::npos) return 0;
  return std::strtoull(text.c_str() + pos + prefix.size(), nullptr, 10);
}

TEST(ExplainAnalyze, TreeMatchesChosenPlan) {
  auto db = MakeObjectDb(600);
  // What did the optimizer actually choose?
  IcebergReport report;
  ASSERT_TRUE(
      db->QueryIceberg(kSkybandSql, IcebergOptions::All(), &report).ok());
  ASSERT_TRUE(report.used_nljp);

  auto analyzed = db->QueryIceberg(std::string("EXPLAIN ANALYZE ") +
                                   kSkybandSql);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  std::string text = PlanText(*analyzed);

  // The tree mirrors the chosen plan: an NLJP operator with the same
  // decision steps the report records, plus memo/prune/cache annotations.
  EXPECT_NE(text.find("Iceberg Query"), std::string::npos) << text;
  EXPECT_NE(text.find("-> NLJP"), std::string::npos) << text;
  for (const std::string& step : report.steps) {
    EXPECT_NE(text.find("decision: " + step), std::string::npos) << text;
  }
  EXPECT_NE(text.find("memo: hits="), std::string::npos) << text;
  EXPECT_NE(text.find("prune: skipped="), std::string::npos) << text;
  EXPECT_NE(text.find("inner Q_R: evaluations="), std::string::npos) << text;
  EXPECT_NE(text.find("Q_B (binding query)"), std::string::npos) << text;
  EXPECT_NE(text.find("metrics: {"), std::string::npos) << text;
}

TEST(ExplainAnalyze, WithoutAnalyzeReturnsPlainPlan) {
  auto db = MakeObjectDb(200);
  auto plan = db->QueryIceberg(std::string("EXPLAIN ") + kSkybandSql);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string text = PlanText(*plan);
  EXPECT_NE(text.find("NLJP"), std::string::npos) << text;
  // No execution: no measured times, no metrics line.
  EXPECT_EQ(text.find("actual time"), std::string::npos) << text;
  EXPECT_EQ(text.find("metrics:"), std::string::npos) << text;
}

/// The tree's numbers and the `metrics:` registry delta must agree exactly:
/// both are published from the same run-local stats block.
void CheckReconciliation(int threads) {
  auto db = MakeObjectDb(600);
  IcebergOptions options = IcebergOptions::All();
  options.base_exec.num_threads = threads;
  auto analyzed = db->QueryIceberg(
      std::string("EXPLAIN ANALYZE ") + kSkybandSql, options);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  std::string text = PlanText(*analyzed);

  uint64_t tree_bindings = NumberAfter(text, "bindings=");
  uint64_t tree_memo_hits = NumberAfter(text, "memo: hits=");
  uint64_t tree_pruned = NumberAfter(text, "prune: skipped=");
  uint64_t tree_inner = NumberAfter(text, "inner Q_R: evaluations=");
  uint64_t tree_tests = NumberAfter(text, "subsumption_tests=");

  std::string metrics = text.substr(text.find("metrics: "));
  EXPECT_EQ(NumberAfter(metrics, "\"nljp.bindings\":"), tree_bindings);
  EXPECT_EQ(NumberAfter(metrics, "\"nljp.memo_hits\":"), tree_memo_hits);
  EXPECT_EQ(NumberAfter(metrics, "\"nljp.pruned\":"), tree_pruned);
  EXPECT_EQ(NumberAfter(metrics, "\"nljp.inner_evaluations\":"), tree_inner);
  EXPECT_EQ(NumberAfter(metrics, "\"nljp.prune_tests\":"), tree_tests);
  EXPECT_EQ(NumberAfter(metrics, "\"nljp.executions\":"), 1u);

  // Sanity: the run did real work, and every binding is accounted for.
  EXPECT_GT(tree_bindings, 0u);
  EXPECT_GE(tree_bindings, tree_memo_hits + tree_pruned + tree_inner);
}

TEST(ExplainAnalyze, ReconcilesWithMetricsSerial) { CheckReconciliation(1); }

TEST(ExplainAnalyze, ReconcilesWithMetricsEightThreads) {
  CheckReconciliation(8);
}

TEST(ExplainAnalyze, BaselineTreeReconciles) {
  auto db = MakeObjectDb(300);
  ExecStats direct;
  ASSERT_TRUE(db->Query(kSkybandSql, ExecOptions(), &direct).ok());

  auto analyzed = db->Query(std::string("EXPLAIN ANALYZE ") + kSkybandSql);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  std::string text = PlanText(*analyzed);

  EXPECT_NE(text.find("Baseline Query"), std::string::npos) << text;
  // Same statement, deterministic engine: the analyzed run's counts equal a
  // direct run's ExecStats, and the metrics delta matches the tree.
  EXPECT_EQ(NumberAfter(text, "pairs_examined="), direct.join_pairs_examined);
  std::string metrics = text.substr(text.find("metrics: "));
  EXPECT_EQ(NumberAfter(metrics, "\"exec.pairs_examined\":"),
            direct.join_pairs_examined);
  EXPECT_EQ(NumberAfter(metrics, "\"exec.rows_joined\":"),
            direct.rows_joined);
  EXPECT_EQ(NumberAfter(metrics, "\"exec.groups_output\":"),
            direct.groups_output);
}

TEST(ExplainAnalyze, ExplicitEntryPointAcceptsBareSql) {
  auto db = MakeObjectDb(200);
  auto analyzed = db->ExplainAnalyzeIceberg(kSkybandSql);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_NE(PlanText(*analyzed).find("Iceberg Query"), std::string::npos);
}

}  // namespace
}  // namespace iceberg
