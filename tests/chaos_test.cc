// Deterministic chaos soak for the serving layer (ISSUE 6 correctness
// bar): under any chaos seed and any session interleaving, every query
// either returns byte-identical results or fails with a clean *retryable*
// error — never a crash, a wrong answer, or a non-retryable transient.
//
// Injection decisions are pure functions of (seed, session, statement,
// attempt, site, ordinal), so a failing (seed, sessions) pair reproduces
// by re-running the same test filter; thread interleaving only changes
// which operation draws a given ordinal, never the correctness outcome.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "src/obs/metrics.h"
#include "src/server/chaos.h"
#include "src/server/session.h"

namespace iceberg {
namespace {

/// Restores "chaos off" no matter how a test exits.
struct ChaosGuard {
  explicit ChaosGuard(ChaosConfig config) {
    ChaosSchedule::SetGlobal(config);
  }
  ~ChaosGuard() { ChaosSchedule::SetGlobal(ChaosConfig{}); }
};

/// Canonical byte rendering of a result: rows sorted with the engine's
/// total order, so comparisons are independent of output order.
std::string CanonicalRender(const TablePtr& table) {
  std::vector<Row> rows = table->rows();
  std::sort(rows.begin(), rows.end(), RowLess{});
  std::string out;
  for (const Row& row : rows) {
    out += RowToString(row);
    out += '\n';
  }
  return out;
}

Database MakeDb() {
  Database db;
  EXPECT_TRUE(db.CreateTable("object", Schema({{"id", DataType::kInt64},
                                               {"x", DataType::kInt64},
                                               {"y", DataType::kInt64}}))
                  .ok());
  EXPECT_TRUE(db.DeclareKey("object", {"id"}).ok());
  for (int64_t i = 0; i < 24; ++i) {
    EXPECT_TRUE(db.Insert("object", {Value::Int(i), Value::Int((i * 13) % 7),
                                     Value::Int((i * 5) % 11)})
                    .ok());
  }
  EXPECT_TRUE(db.CreateTable("extra", Schema({{"id", DataType::kInt64},
                                              {"v", DataType::kInt64}}))
                  .ok());
  EXPECT_TRUE(db.Insert("extra", {Value::Int(0), Value::Int(0)}).ok());
  return db;
}

std::vector<std::string> Script() {
  return {
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
      "GROUP BY L.id HAVING COUNT(*) <= 50",
      "SELECT id FROM object WHERE x > 2",
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x GROUP BY L.id HAVING COUNT(*) <= 12",
  };
}

ServerConfig SoakServerConfig() {
  ServerConfig config;
  config.admission.max_concurrent = 2;
  config.admission.max_queue_depth = 32;
  config.admission.queue_timeout_ms = 10000;
  config.admission.memory_budget_bytes = 256u << 20;  // ample shared pool
  config.retry.max_attempts = 6;
  config.retry.initial_backoff_ms = 1;
  config.retry.max_backoff_ms = 4;
  return config;
}

/// Fault rates for the soak: every class active, tuned so that on this
/// workload most attempts complete and the retry loop sees real traffic.
ChaosConfig SoakChaos(uint64_t seed) {
  ChaosConfig c;
  c.seed = seed;
  c.cancel_every = 2000;
  // Reserve sites are ~100x rarer than check sites (they guard whole
  // allocations, not loop iterations), so the rate is correspondingly
  // higher to actually draw hits.
  c.alloc_fail_every = 40;
  c.shed_storm_every = 300;
  c.delay_every = 200;
  c.delay_us = 5;
  return c;
}

/// Fault-free reference results, computed once per statement.
std::map<std::string, std::string> ExpectedResults() {
  Database db = MakeDb();
  IcebergServer server(&db, SoakServerConfig());
  auto session = server.OpenSession();
  std::map<std::string, std::string> expected;
  for (const std::string& sql : Script()) {
    QueryOutcome outcome = session->Execute(sql);
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    expected[sql] = CanonicalRender(outcome.table);
    EXPECT_FALSE(expected[sql].empty());
  }
  return expected;
}

struct SoakTally {
  int ok = 0;
  int shed = 0;  // clean retryable failures after retries were exhausted
};

/// Runs `num_sessions` thread-per-session clients through the script and
/// asserts the chaos invariant on every outcome.
SoakTally RunSoak(uint64_t seed, int num_sessions,
                  const std::map<std::string, std::string>& expected,
                  bool mutate_unrelated_table) {
  Database db = MakeDb();
  IcebergServer server(&db, SoakServerConfig());
  ChaosGuard chaos(SoakChaos(seed));

  std::mutex mu;
  SoakTally tally;
  std::vector<std::string> violations;
  std::atomic<bool> stop_mutator{false};

  std::vector<std::thread> threads;
  for (int s = 0; s < num_sessions; ++s) {
    threads.emplace_back([&] {
      auto session = server.OpenSession();
      for (const std::string& sql : Script()) {
        QueryOutcome outcome = session->Execute(sql);
        std::lock_guard<std::mutex> lock(mu);
        if (outcome.status.ok()) {
          ++tally.ok;
          if (CanonicalRender(outcome.table) != expected.at(sql)) {
            violations.push_back("result mismatch for: " + sql);
          }
        } else if (outcome.status.IsRetryable()) {
          ++tally.shed;
        } else {
          violations.push_back("non-retryable failure: " +
                               outcome.status.ToString());
        }
      }
    });
  }

  std::thread mutator;
  if (mutate_unrelated_table) {
    // Concurrent mutation of a table the script never reads: rotates the
    // catalog version (provoking snapshot conflicts and cache-key
    // rotation) without changing any expected result.
    mutator = std::thread([&] {
      int64_t i = 1;
      while (!stop_mutator.load(std::memory_order_acquire)) {
        Status st = server.Insert("extra", {Value::Int(i), Value::Int(i)});
        ASSERT_TRUE(st.ok());
        ++i;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  for (auto& t : threads) t.join();
  stop_mutator.store(true, std::memory_order_release);
  if (mutator.joinable()) mutator.join();

  EXPECT_TRUE(violations.empty())
      << "seed=" << seed << " sessions=" << num_sessions << ": "
      << violations.front() << " (" << violations.size() << " total)";
  return tally;
}

TEST(ChaosSoak, SeedSweepByteIdenticalOrCleanRetryable) {
  const std::map<std::string, std::string> expected = ExpectedResults();
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  SoakTally total;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    for (int sessions : {1, 4, 8}) {
      SoakTally tally = RunSoak(seed, sessions, expected,
                                /*mutate_unrelated_table=*/false);
      total.ok += tally.ok;
      total.shed += tally.shed;
    }
  }
  // The harness must not degenerate into shedding everything: across the
  // sweep the overwhelming majority of statements complete exactly.
  EXPECT_GT(total.ok, total.shed * 4)
      << "ok=" << total.ok << " shed=" << total.shed;
  // ... and the invariant must not be vacuous: the sweep really injected
  // faults from every class.
  MetricsSnapshot delta =
      MetricsRegistry::Global().Snapshot().DiffSince(before);
  EXPECT_GT(delta.counters["chaos.injected_cancels"], 0u);
  EXPECT_GT(delta.counters["chaos.injected_alloc_failures"], 0u);
  EXPECT_GT(delta.counters["chaos.injected_shed_storms"], 0u);
  EXPECT_GT(delta.counters["chaos.injected_delays"], 0u);
}

TEST(ChaosSoak, ConcurrentMutationKeepsReadersExact) {
  const std::map<std::string, std::string> expected = ExpectedResults();
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  SoakTally total;
  for (uint64_t seed : {3u, 11u}) {
    SoakTally tally = RunSoak(seed, 4, expected,
                              /*mutate_unrelated_table=*/true);
    total.ok += tally.ok;
    total.shed += tally.shed;
  }
  EXPECT_GT(total.ok, 0);
  // Snapshot conflicts may or may not trigger depending on timing; what
  // matters (asserted in RunSoak) is that readers never see torn state.
  MetricsSnapshot delta =
      MetricsRegistry::Global().Snapshot().DiffSince(before);
  SUCCEED() << "snapshot conflicts observed: "
            << delta.counters["server.snapshot_conflicts"];
}

TEST(ChaosSoak, SameSeedSerialRunsAreReplayable) {
  const std::map<std::string, std::string> expected = ExpectedResults();
  // Two fresh single-session serial runs under the same seed must make
  // identical injection decisions: same per-statement attempt counts,
  // same final status codes.
  auto run = [&] {
    Database db = MakeDb();
    IcebergServer server(&db, SoakServerConfig());
    ChaosGuard chaos(SoakChaos(/*seed=*/77));
    auto session = server.OpenSession();
    std::vector<std::pair<int, StatusCode>> trace;
    for (const std::string& sql : Script()) {
      QueryOutcome outcome = session->Execute(sql);
      trace.emplace_back(outcome.attempts, outcome.status.code());
      if (outcome.status.ok()) {
        EXPECT_EQ(CanonicalRender(outcome.table), expected.at(sql));
      } else {
        EXPECT_TRUE(outcome.status.IsRetryable());
      }
    }
    return trace;
  };
  auto first = run();
  auto second = run();
  EXPECT_EQ(first, second)
      << "chaos schedule must be a pure function of the seed";
}

TEST(ChaosSoak, DisabledChaosInjectsNothing) {
  ChaosSchedule::SetGlobal(ChaosConfig{});
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  Database db = MakeDb();
  IcebergServer server(&db, SoakServerConfig());
  auto session = server.OpenSession();
  for (const std::string& sql : Script()) {
    QueryOutcome outcome = session->Execute(sql);
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_EQ(outcome.attempts, 1);
  }
  MetricsSnapshot delta =
      MetricsRegistry::Global().Snapshot().DiffSince(before);
  EXPECT_EQ(delta.counters["chaos.injected_cancels"], 0u);
  EXPECT_EQ(delta.counters["chaos.injected_alloc_failures"], 0u);
  EXPECT_EQ(delta.counters["chaos.injected_shed_storms"], 0u);
  EXPECT_EQ(delta.counters["chaos.injected_delays"], 0u);
}

}  // namespace
}  // namespace iceberg
