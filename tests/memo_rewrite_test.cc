// Tests for the static memoization rewrite of Appendix C (Listing 8):
// equivalence with the baseline in both the G_L -> A_L ("key mode") and
// the algebraic-partials variants, including non-empty G_R, which the
// NLJP-internal memoization conditions of Section 6 exclude.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/engine/database.h"
#include "src/rewrite/memo_rewrite.h"
#include "src/workload/object.h"

namespace iceberg {
namespace {

void ExpectSame(const TablePtr& a, const TablePtr& b) {
  ASSERT_EQ(a->num_rows(), b->num_rows());
  std::vector<Row> ra = a->rows(), rb = b->rows();
  std::sort(ra.begin(), ra.end(), RowLess());
  std::sort(rb.begin(), rb.end(), RowLess());
  for (size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(CompareRows(ra[i], rb[i]), 0)
        << RowToString(ra[i]) << " vs " << RowToString(rb[i]);
  }
}

Result<MemoRewriteResult> RunRewrite(Database* db, const std::string& sql) {
  ICEBERG_ASSIGN_OR_RETURN(QueryBlock block, db->Prepare(sql));
  TablePartition part;
  part.left = {0};
  part.right = {1};
  ICEBERG_ASSIGN_OR_RETURN(IcebergView view, AnalyzeIceberg(block, part));
  return ExecuteStaticMemoRewrite(view);
}

class MemoRewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ObjectConfig cfg;
    cfg.num_objects = 300;
    cfg.domain = 25;  // duplicates guaranteed
    ASSERT_TRUE(RegisterObjects(&db_, cfg).ok());
  }
  Database db_;
};

TEST_F(MemoRewriteTest, KeyModeSkyband) {
  const char* sql =
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
      "GROUP BY L.id HAVING COUNT(*) <= 15";
  auto base = db_.Query(sql);
  ASSERT_TRUE(base.ok());
  auto rewrite = RunRewrite(&db_, sql);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  EXPECT_FALSE(rewrite->used_partial_aggregates);  // G_L = {id} is a key
  ExpectSame(*base, rewrite->result);
  EXPECT_LT(rewrite->distinct_bindings, rewrite->l_rows);  // dedup happened
}

TEST_F(MemoRewriteTest, PartialAggregateModeNonKeyGrouping) {
  // Group by x: multiple L-tuples per group with different bindings, so
  // LJR stores f^i partials and the outer combines with f^o.
  const char* sql =
      "SELECT L.x, COUNT(*), SUM(R.y) FROM object L, object R "
      "WHERE L.y <= R.y GROUP BY L.x HAVING COUNT(*) >= 100";
  auto base = db_.Query(sql);
  ASSERT_TRUE(base.ok());
  auto rewrite = RunRewrite(&db_, sql);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  EXPECT_TRUE(rewrite->used_partial_aggregates);
  ExpectSame(*base, rewrite->result);
}

TEST_F(MemoRewriteTest, SupportsNonEmptyGr) {
  // G_R = {R.x}: Section 6's NLJP memo conditions exclude this, but the
  // static rewrite handles it by grouping LJR on J_L + G_R.
  const char* sql =
      "SELECT L.id, R.x, COUNT(*) FROM object L, object R "
      "WHERE L.y <= R.y GROUP BY L.id, R.x HAVING COUNT(*) >= 5";
  auto base = db_.Query(sql);
  ASSERT_TRUE(base.ok());
  auto rewrite = RunRewrite(&db_, sql);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  ExpectSame(*base, rewrite->result);
}

TEST_F(MemoRewriteTest, AvgIsAlgebraicInPartialMode) {
  const char* sql =
      "SELECT L.x, AVG(R.y), COUNT(*) FROM object L, object R "
      "WHERE L.y <= R.y GROUP BY L.x HAVING COUNT(*) >= 50";
  auto base = db_.Query(sql);
  ASSERT_TRUE(base.ok());
  auto rewrite = RunRewrite(&db_, sql);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  EXPECT_TRUE(rewrite->used_partial_aggregates);
  ExpectSame(*base, rewrite->result);
}

TEST_F(MemoRewriteTest, HolisticAggregateNeedsKeyMode) {
  const char* keyed =
      "SELECT L.id, COUNT(DISTINCT R.x) FROM object L, object R "
      "WHERE L.y <= R.y GROUP BY L.id HAVING COUNT(DISTINCT R.x) <= 10";
  auto base = db_.Query(keyed);
  ASSERT_TRUE(base.ok());
  auto rewrite = RunRewrite(&db_, keyed);
  ASSERT_TRUE(rewrite.ok()) << rewrite.status().ToString();
  ExpectSame(*base, rewrite->result);

  const char* unkeyed =
      "SELECT L.x, COUNT(DISTINCT R.x) FROM object L, object R "
      "WHERE L.y <= R.y GROUP BY L.x HAVING COUNT(DISTINCT R.x) <= 10";
  EXPECT_FALSE(RunRewrite(&db_, unkeyed).ok());
}

TEST_F(MemoRewriteTest, RejectsOuterSideHaving) {
  const char* sql =
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.y <= R.y GROUP BY L.id HAVING MAX(L.x) <= 10";
  EXPECT_FALSE(RunRewrite(&db_, sql).ok());
}

TEST_F(MemoRewriteTest, EmptyJoinResult) {
  const char* sql =
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.x + 1000 <= R.x GROUP BY L.id HAVING COUNT(*) >= 1";
  auto base = db_.Query(sql);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ((*base)->num_rows(), 0u);
  auto rewrite = RunRewrite(&db_, sql);
  ASSERT_TRUE(rewrite.ok());
  EXPECT_EQ(rewrite->result->num_rows(), 0u);
}

}  // namespace
}  // namespace iceberg
