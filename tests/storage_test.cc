// Unit tests for src/storage: table append/update and index behaviour
// (exact lookup, range scans, bound scans with multi-column prefixes).

#include <gtest/gtest.h>

#include <algorithm>

#include "src/storage/table.h"

namespace iceberg {
namespace {

Table MakePoints() {
  Table t("pts", Schema({{"id", DataType::kInt64},
                         {"x", DataType::kInt64},
                         {"y", DataType::kInt64}}));
  int data[][3] = {{0, 1, 5}, {1, 2, 4}, {2, 2, 9}, {3, 3, 1}, {4, 5, 5}};
  for (auto& d : data) {
    t.AppendUnchecked({Value::Int(d[0]), Value::Int(d[1]), Value::Int(d[2])});
  }
  return t;
}

TEST(Table, AppendValidatesArity) {
  Table t("t", Schema({{"a", DataType::kInt64}}));
  EXPECT_TRUE(t.Append({Value::Int(1)}).ok());
  EXPECT_FALSE(t.Append({Value::Int(1), Value::Int(2)}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, UpdateRowInPlace) {
  Table t("t", Schema({{"a", DataType::kInt64}}));
  t.AppendUnchecked({Value::Int(1)});
  t.UpdateRow(0, {Value::Int(9)});
  EXPECT_EQ(t.row(0)[0].AsInt(), 9);
}

TEST(Table, BuildIndexUnknownColumnFails) {
  Table t = MakePoints();
  EXPECT_FALSE(t.BuildOrderedIndex({"nope"}).ok());
  EXPECT_FALSE(t.BuildHashIndex({"nope"}).ok());
}

TEST(OrderedIndex, ExactLookup) {
  Table t = MakePoints();
  ASSERT_TRUE(t.BuildOrderedIndex({"x"}).ok());
  const OrderedIndex& idx = t.ordered_index(0);
  std::vector<size_t> hits = idx.Lookup({Value::Int(2)});
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<size_t>{1, 2}));
  EXPECT_TRUE(idx.Lookup({Value::Int(99)}).empty());
}

TEST(OrderedIndex, LowerBoundScan) {
  Table t = MakePoints();
  ASSERT_TRUE(t.BuildOrderedIndex({"x"}).ok());
  std::vector<size_t> hits =
      t.ordered_index(0).LowerBoundScan({Value::Int(3)}, /*strict=*/false);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<size_t>{3, 4}));  // x in {3, 5}
}

TEST(OrderedIndex, UpperBoundScanPrefixSemantics) {
  Table t = MakePoints();
  ASSERT_TRUE(t.BuildOrderedIndex({"x", "y"}).ok());
  // Prefix bound x <= 2 must include BOTH x=2 rows regardless of y.
  std::vector<size_t> hits =
      t.ordered_index(0).UpperBoundScan({Value::Int(2)});
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<size_t>{0, 1, 2}));
}

TEST(OrderedIndex, RangeLookupInclusive) {
  Table t = MakePoints();
  ASSERT_TRUE(t.BuildOrderedIndex({"x"}).ok());
  std::vector<size_t> hits = t.ordered_index(0).RangeLookup(
      {Value::Int(2)}, {Value::Int(3), Value::Int(1 << 30)});
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<size_t>{1, 2, 3}));
}

TEST(HashIndex, LookupAndMiss) {
  Table t = MakePoints();
  ASSERT_TRUE(t.BuildHashIndex({"x", "y"}).ok());
  const HashIndex& idx = t.hash_index(0);
  const std::vector<size_t>* hits = idx.Lookup({Value::Int(2), Value::Int(4)});
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(*hits, (std::vector<size_t>{1}));
  EXPECT_EQ(idx.Lookup({Value::Int(2), Value::Int(5)}), nullptr);
}

TEST(Table, IndexMaintainedOnAppend) {
  Table t("t", Schema({{"a", DataType::kInt64}}));
  ASSERT_TRUE(t.BuildHashIndex({"a"}).ok());
  t.AppendUnchecked({Value::Int(7)});
  const std::vector<size_t>* hits = t.hash_index(0).Lookup({Value::Int(7)});
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->size(), 1u);
}

TEST(Table, FindHashIndexMatchesAnyOrder) {
  Table t = MakePoints();
  ASSERT_TRUE(t.BuildHashIndex({"x", "y"}).ok());
  std::vector<size_t> key_order;
  const HashIndex* idx = t.FindHashIndex({2, 1}, &key_order);  // (y, x)
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(key_order, (std::vector<size_t>{1, 2}));  // stored order (x, y)
  EXPECT_EQ(t.FindHashIndex({0, 1}, &key_order), nullptr);
}

TEST(Table, FindOrderedIndexExactOrderOnly) {
  Table t = MakePoints();
  ASSERT_TRUE(t.BuildOrderedIndex({"x", "y"}).ok());
  EXPECT_NE(t.FindOrderedIndex({1, 2}), nullptr);
  EXPECT_EQ(t.FindOrderedIndex({2, 1}), nullptr);
}

TEST(Table, DropIndexes) {
  Table t = MakePoints();
  ASSERT_TRUE(t.BuildOrderedIndex({"x"}).ok());
  ASSERT_TRUE(t.BuildHashIndex({"x"}).ok());
  t.DropIndexes();
  EXPECT_EQ(t.num_ordered_indexes(), 0u);
  EXPECT_EQ(t.num_hash_indexes(), 0u);
}

TEST(Table, BuildIndexByIdsAfterLoad) {
  Table t = MakePoints();
  t.BuildOrderedIndexByIds({1});
  EXPECT_EQ(t.ordered_index(0).num_entries(), t.num_rows());
}

TEST(Table, ApproxBytesGrowsWithRows) {
  Table t("t", Schema({{"s", DataType::kString}}));
  size_t empty = t.ApproxBytes();
  t.AppendUnchecked({Value::Str("hello world")});
  EXPECT_GT(t.ApproxBytes(), empty);
}

}  // namespace
}  // namespace iceberg
