// Tests for the full optimization procedure (Section 7 / Appendix D,
// Listing 9): combining a-priori reducers with NLJP on multiway joins, the
// Example 13 walkthrough, FD-based equality inference, and end-to-end
// equivalence sweeps over all technique combinations.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/engine/database.h"
#include "src/rewrite/equality_inference.h"
#include "src/workload/baseball.h"
#include "src/workload/basket.h"
#include "src/workload/object.h"

namespace iceberg {
namespace {

void ExpectSame(const TablePtr& a, const TablePtr& b,
                const std::string& context = "") {
  ASSERT_EQ(a->num_rows(), b->num_rows()) << context;
  std::vector<Row> ra = a->rows(), rb = b->rows();
  std::sort(ra.begin(), ra.end(), RowLess());
  std::sort(rb.begin(), rb.end(), RowLess());
  for (size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(CompareRows(ra[i], rb[i]), 0)
        << context << ": " << RowToString(ra[i]) << " vs "
        << RowToString(rb[i]);
  }
}

constexpr char kComplexSql[] =
    "SELECT S1.id, S1.attr, S2.attr, COUNT(*) "
    "FROM product S1, product S2, product T1, product T2 "
    "WHERE S1.id = S2.id AND T1.id = T2.id "
    "AND S1.category = T1.category "
    "AND T1.attr = S1.attr AND T2.attr = S2.attr "
    "AND T1.val > S1.val AND T2.val > S2.val "
    "GROUP BY S1.id, S1.attr, S2.attr HAVING COUNT(*) >= 25";

class ComplexQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BaseballConfig cfg;
    cfg.num_rows = 4000;
    cfg.num_players = 250;
    ASSERT_TRUE(RegisterProduct(&db_, cfg, /*max_base_rows=*/700).ok());
  }
  Database db_;
};

TEST_F(ComplexQueryTest, EqualityInferenceDerivesCategoryPredicates) {
  auto block = db_.Prepare(kComplexSql);
  ASSERT_TRUE(block.ok());
  size_t before = block->where_conjuncts.size();
  size_t derived = InferDerivedEqualities(&*block);
  // s1~s2 and t1~t2 category links exist plus pairwise closure; Example 13
  // needs at least S2.category = T2.category.
  EXPECT_GE(derived, 3u);
  EXPECT_EQ(block->where_conjuncts.size(), before + derived);
  bool found_s2_t2 = false;
  for (const ExprPtr& conjunct : block->where_conjuncts) {
    std::string text = conjunct->ToString();
    if (text == "s2.category = t2.category" ||
        text == "t2.category = s2.category") {
      found_s2_t2 = true;
    }
  }
  EXPECT_TRUE(found_s2_t2);
}

TEST_F(ComplexQueryTest, PlanCombinesBothReducersAndNljp) {
  // The paper's own prototype could not apply generalized a-priori together
  // with pruning on this query (Section 7's "temporary limitation"); the
  // full procedure of Appendix D can, and ours does.
  IcebergReport report;
  auto smart = db_.QueryIceberg(kComplexSql, IcebergOptions::All(), &report);
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  EXPECT_EQ(report.reductions.size(), 2u) << report.ToString();  // Q_S1, Q_S2
  EXPECT_TRUE(report.used_nljp) << report.ToString();
  // Both reducers group by (id, attr) — the Example 13 shapes.
  bool has_s1 = false, has_s2 = false;
  for (const auto& r : report.reductions) {
    if (r.alias == "s1") has_s1 = true;
    if (r.alias == "s2") has_s2 = true;
    EXPECT_LE(r.rows_after, r.rows_before);
  }
  EXPECT_TRUE(has_s1);
  EXPECT_TRUE(has_s2);
}

TEST_F(ComplexQueryTest, AllConfigurationsAgree) {
  auto base = db_.Query(kComplexSql);
  ASSERT_TRUE(base.ok());
  EXPECT_GT((*base)->num_rows(), 0u);  // the iceberg has a tip
  for (int mask = 0; mask < 8; ++mask) {
    IcebergOptions options =
        IcebergOptions::Only(mask & 1, mask & 2, mask & 4);
    auto smart = db_.QueryIceberg(kComplexSql, options);
    ASSERT_TRUE(smart.ok()) << smart.status().ToString();
    ExpectSame(*base, *smart, "mask=" + std::to_string(mask));
  }
}

TEST_F(ComplexQueryTest, PruningPredicateMatchesListing10) {
  auto explain = db_.ExplainIceberg(kComplexSql);
  ASSERT_TRUE(explain.ok());
  // The derived Q_C requires equality on the attr pair (string residue)
  // and dominance on the vals — Listing 10's shape.
  EXPECT_NE(explain->find("Q_C"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("="), std::string::npos);
  EXPECT_NE(explain->find("memoization: enabled"), std::string::npos)
      << *explain;
}

TEST_F(ComplexQueryTest, VendorAAgreesToo) {
  auto base = db_.Query(kComplexSql, ExecOptions::Postgres());
  auto vendor = db_.Query(kComplexSql, ExecOptions::VendorA());
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(vendor.ok());
  ExpectSame(*base, *vendor, "vendor A");
}

TEST(OptimizerPairs, FullPairsQueryAllConfigs) {
  Database db;
  BaseballConfig cfg;
  cfg.num_rows = 6000;
  cfg.num_players = 250;
  ASSERT_TRUE(RegisterBaseball(&db, cfg).ok());
  const char* sql =
      "WITH pair AS "
      " (SELECT s1.pid AS pid1, s2.pid AS pid2, "
      "         AVG(s1.hits) AS hits1, AVG(s1.hruns) AS hruns1, "
      "         AVG(s2.hits) AS hits2, AVG(s2.hruns) AS hruns2 "
      "  FROM score s1, score s2 "
      "  WHERE s1.teamid = s2.teamid AND s1.year = s2.year "
      "    AND s1.round = s2.round AND s1.pid < s2.pid "
      "  GROUP BY s1.pid, s2.pid HAVING COUNT(*) >= 4) "
      "SELECT L.pid1, L.pid2, COUNT(*) "
      "FROM pair L, pair R "
      "WHERE R.hits1 >= L.hits1 AND R.hruns1 >= L.hruns1 "
      "  AND R.hits2 >= L.hits2 AND R.hruns2 >= L.hruns2 "
      "  AND (R.hits1 > L.hits1 OR R.hruns1 > L.hruns1 "
      "    OR R.hits2 > L.hits2 OR R.hruns2 > L.hruns2) "
      "GROUP BY L.pid1, L.pid2 HAVING COUNT(*) <= 30";
  auto base = db.Query(sql);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  for (int mask = 0; mask < 8; ++mask) {
    IcebergOptions options =
        IcebergOptions::Only(mask & 1, mask & 2, mask & 4);
    auto smart = db.QueryIceberg(sql, options);
    ASSERT_TRUE(smart.ok()) << smart.status().ToString();
    ExpectSame(*base, *smart, "pairs mask=" + std::to_string(mask));
  }
}

TEST(OptimizerPairs, CteUsesAprioriMainUsesNljp) {
  Database db;
  BaseballConfig cfg;
  cfg.num_rows = 6000;
  cfg.num_players = 250;
  ASSERT_TRUE(RegisterBaseball(&db, cfg).ok());
  const char* sql =
      "WITH pair AS "
      " (SELECT s1.pid AS pid1, s2.pid AS pid2, "
      "         SUM(s1.hits) AS hits1, SUM(s2.hits) AS hits2 "
      "  FROM score s1, score s2 "
      "  WHERE s1.teamid = s2.teamid AND s1.year = s2.year "
      "    AND s1.round = s2.round AND s1.pid < s2.pid "
      "  GROUP BY s1.pid, s2.pid HAVING COUNT(*) >= 4) "
      "SELECT L.pid1, L.pid2, COUNT(*) FROM pair L, pair R "
      "WHERE R.hits1 >= L.hits1 AND R.hits2 >= L.hits2 "
      "  AND (R.hits1 > L.hits1 OR R.hits2 > L.hits2) "
      "GROUP BY L.pid1, L.pid2 HAVING COUNT(*) <= 25";
  IcebergReport report;
  auto smart = db.QueryIceberg(sql, IcebergOptions::All(), &report);
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  // The WITH block reduced score via a-priori (both sides), and the main
  // block ran under NLJP.
  EXPECT_GE(report.reductions.size(), 1u) << report.ToString();
  EXPECT_TRUE(report.used_nljp) << report.ToString();
}

TEST(OptimizerFallback, NoHavingFallsBackToBaseline) {
  Database db;
  ObjectConfig cfg;
  cfg.num_objects = 100;
  ASSERT_TRUE(RegisterObjects(&db, cfg).ok());
  const char* sql = "SELECT o.id FROM object o WHERE o.x < 50";
  auto base = db.Query(sql);
  IcebergReport report;
  auto smart = db.QueryIceberg(sql, IcebergOptions::All(), &report);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(smart.ok());
  EXPECT_FALSE(report.used_nljp);
  ExpectSame(*base, *smart);
}

TEST(OptimizerFallback, NeitherMonotoneDirectionStillCorrect) {
  Database db;
  ObjectConfig cfg;
  cfg.num_objects = 200;
  cfg.domain = 30;
  ASSERT_TRUE(RegisterObjects(&db, cfg).ok());
  // AVG HAVING: no technique applies; must fall back and agree.
  const char* sql =
      "SELECT L.id, AVG(R.x) FROM object L, object R "
      "WHERE L.x <= R.x GROUP BY L.id HAVING AVG(R.x) >= 15";
  auto base = db.Query(sql);
  IcebergReport report;
  auto smart = db.QueryIceberg(sql, IcebergOptions::All(), &report);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  ExpectSame(*base, *smart);
}

TEST(OptimizerExplain, SkybandShowsNljpNoApriori) {
  Database db;
  ObjectConfig cfg;
  cfg.num_objects = 100;
  ASSERT_TRUE(RegisterObjects(&db, cfg).ok());
  auto explain = db.ExplainIceberg(
      "SELECT L.id, COUNT(*) FROM object L, object R "
      "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
      "GROUP BY L.id HAVING COUNT(*) <= 50");
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain->find("Reducer"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("NLJP"), std::string::npos) << *explain;
}

TEST(OptimizerMarketBasket, AprioriOnBothSidesNoNljp) {
  Database db;
  BasketConfig cfg;
  cfg.num_baskets = 1500;
  cfg.num_items = 300;
  ASSERT_TRUE(RegisterBaskets(&db, cfg).ok());
  const char* sql =
      "SELECT i1.item, i2.item, COUNT(*) FROM basket i1, basket i2 "
      "WHERE i1.bid = i2.bid AND i1.item < i2.item "
      "GROUP BY i1.item, i2.item HAVING COUNT(*) >= 25";
  IcebergReport report;
  auto smart = db.QueryIceberg(sql, IcebergOptions::All(), &report);
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  EXPECT_EQ(report.reductions.size(), 2u) << report.ToString();
  EXPECT_FALSE(report.used_nljp);
  auto base = db.Query(sql);
  ASSERT_TRUE(base.ok());
  ExpectSame(*base, *smart);
}

}  // namespace
}  // namespace iceberg
