// Tests for src/fme: linear expressions, NNF/DNF transforms,
// Fourier-Motzkin elimination, and full quantifier elimination, validated
// against brute-force evaluation over integer grids.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "src/fme/fme.h"
#include "src/fme/formula.h"

namespace iceberg {
namespace fme {
namespace {

TEST(LinearExpr, ArithmeticAndNormalize) {
  LinearExpr e = LinearExpr::Var(0);
  e.Add(LinearExpr::Var(1), 2.0);
  e.AddConstant(3.0);
  EXPECT_DOUBLE_EQ(e.Coeff(0), 1.0);
  EXPECT_DOUBLE_EQ(e.Coeff(1), 2.0);
  EXPECT_DOUBLE_EQ(e.Eval({10.0, 5.0}), 23.0);
  e.Add(LinearExpr::Var(0), -1.0);  // cancel var 0
  EXPECT_FALSE(e.HasVar(0));
}

TEST(LinearExpr, ScaleFlipsSign) {
  LinearExpr e = LinearExpr::Var(0);
  e.Scale(-2.0);
  EXPECT_DOUBLE_EQ(e.Coeff(0), -2.0);
}

TEST(LinAtom, EvalRespectsStrictness) {
  LinearExpr zero;  // 0
  LinAtom le{zero, AtomOp::kLe};
  LinAtom lt{zero, AtomOp::kLt};
  LinAtom eq{zero, AtomOp::kEq};
  EXPECT_TRUE(le.Eval({}));
  EXPECT_FALSE(lt.Eval({}));
  EXPECT_TRUE(eq.Eval({}));
}

TEST(LinAtom, CanonicalKeyScaleInvariant) {
  LinearExpr a = LinearExpr::Var(0);
  a.Add(LinearExpr::Var(1), -1.0);
  LinearExpr b = a;
  b.Scale(2.0);
  LinAtom a_le{a, AtomOp::kLe};
  LinAtom b_le{b, AtomOp::kLe};
  LinAtom a_lt{a, AtomOp::kLt};
  EXPECT_EQ(a_le.CanonicalKey(), b_le.CanonicalKey());
  EXPECT_NE(a_le.CanonicalKey(), a_lt.CanonicalKey());
}

TEST(Formula, ConstructorsFold) {
  EXPECT_EQ(MakeAnd({MakeTrue(), MakeTrue()})->kind, FormulaKind::kTrue);
  EXPECT_EQ(MakeAnd({MakeTrue(), MakeFalse()})->kind, FormulaKind::kFalse);
  EXPECT_EQ(MakeOr({MakeFalse(), MakeFalse()})->kind, FormulaKind::kFalse);
  EXPECT_EQ(MakeOr({MakeTrue(), MakeFalse()})->kind, FormulaKind::kTrue);
  EXPECT_EQ(MakeNot(MakeNot(MakeTrue()))->kind, FormulaKind::kTrue);
}

TEST(Formula, ConstantAtomFolds) {
  LinearExpr five(5.0);
  EXPECT_EQ(MakeAtom(LinAtom{five, AtomOp::kLt})->kind, FormulaKind::kFalse);
  LinearExpr minus(-1.0);
  EXPECT_EQ(MakeAtom(LinAtom{minus, AtomOp::kLt})->kind, FormulaKind::kTrue);
}

TEST(Formula, FreeVarsSkipBound) {
  FormulaPtr f = MakeExists(0, AtomLe(LinearExpr::Var(0),
                                      LinearExpr::Var(1)));
  std::set<int> vars;
  FreeVars(*f, &vars);
  EXPECT_EQ(vars, std::set<int>{1});
}

TEST(ToNnf, PushesNegationThroughConnectives) {
  FormulaPtr f = MakeNot(MakeAnd({AtomLe(LinearExpr::Var(0), LinearExpr(0.0)),
                                  AtomLt(LinearExpr::Var(1), LinearExpr(0.0))}));
  FormulaPtr nnf = ToNnf(f);
  EXPECT_EQ(nnf->kind, FormulaKind::kOr);
  // not(x <= 0) == x > 0, not(y < 0) == y >= 0: both atoms, no Nots left.
  for (const FormulaPtr& c : nnf->children) {
    EXPECT_EQ(c->kind, FormulaKind::kAtom);
  }
}

TEST(ToNnf, NegatedEqualityBecomesDisjunction) {
  FormulaPtr f = MakeNot(AtomEq(LinearExpr::Var(0), LinearExpr(3.0)));
  FormulaPtr nnf = ToNnf(f);
  EXPECT_EQ(nnf->kind, FormulaKind::kOr);
  EXPECT_EQ(nnf->children.size(), 2u);
}

TEST(ToDnf, DistributesAndOverOr) {
  FormulaPtr a = AtomLe(LinearExpr::Var(0), LinearExpr(0.0));
  FormulaPtr b = AtomLe(LinearExpr::Var(1), LinearExpr(0.0));
  FormulaPtr c = AtomLe(LinearExpr::Var(2), LinearExpr(0.0));
  auto dnf = ToDnf(MakeAnd({a, MakeOr({b, c})}));
  ASSERT_TRUE(dnf.ok());
  EXPECT_EQ(dnf->size(), 2u);
  EXPECT_EQ((*dnf)[0].size(), 2u);
}

TEST(ToDnf, RespectsCap) {
  // (a0 or b0) and (a1 or b1) ... grows 2^n.
  std::vector<FormulaPtr> clauses;
  for (int i = 0; i < 20; ++i) {
    clauses.push_back(
        MakeOr({AtomLe(LinearExpr::Var(2 * i), LinearExpr(0.0)),
                AtomLe(LinearExpr::Var(2 * i + 1), LinearExpr(0.0))}));
  }
  EXPECT_FALSE(ToDnf(MakeAnd(std::move(clauses)), /*max_disjuncts=*/1000).ok());
}

TEST(Fme, EliminatesBoundedVariable) {
  // x >= y + 500 and x + 10 <= z  (the paper's Eq. 1 fragment)
  // eliminating x must give y + 510 <= z.
  Conjunction conj;
  LinearExpr a = LinearExpr::Var(1);  // y
  a.AddConstant(500);
  a.Add(LinearExpr::Var(0), -1.0);  // y + 500 - x <= 0
  conj.push_back({a, AtomOp::kLe});
  LinearExpr b = LinearExpr::Var(0);  // x
  b.AddConstant(10);
  b.Add(LinearExpr::Var(2), -1.0);  // x + 10 - z <= 0
  conj.push_back({b, AtomOp::kLe});
  Conjunction out = EliminateVarFme(conj, 0);
  ASSERT_EQ(out.size(), 1u);
  // y + 510 - z <= 0.
  EXPECT_DOUBLE_EQ(out[0].expr.Coeff(1), 1.0);
  EXPECT_DOUBLE_EQ(out[0].expr.Coeff(2), -1.0);
  EXPECT_DOUBLE_EQ(out[0].expr.constant(), 510.0);
}

TEST(Fme, EqualitySubstitution) {
  // x = 2y and x <= 10  =>  2y <= 10.
  Conjunction conj;
  LinearExpr eq = LinearExpr::Var(0);
  eq.Add(LinearExpr::Var(1), -2.0);
  conj.push_back({eq, AtomOp::kEq});
  LinearExpr le = LinearExpr::Var(0);
  le.AddConstant(-10.0);
  conj.push_back({le, AtomOp::kLe});
  Conjunction out = EliminateVarFme(conj, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].expr.Coeff(1), 2.0);
  EXPECT_DOUBLE_EQ(out[0].expr.constant(), -10.0);
}

TEST(Fme, UnboundedVariableDropsAtoms) {
  Conjunction conj;
  LinearExpr lower = LinearExpr(1.0);
  lower.Add(LinearExpr::Var(0), -1.0);  // 1 - x <= 0, i.e. x >= 1 only
  conj.push_back({lower, AtomOp::kLe});
  Conjunction out = EliminateVarFme(conj, 0);
  EXPECT_TRUE(out.empty());
}

TEST(Fme, StrictnessPropagates) {
  // x > y and x <= z  =>  y < z.
  Conjunction conj;
  LinearExpr g = LinearExpr::Var(1);
  g.Add(LinearExpr::Var(0), -1.0);  // y - x < 0
  conj.push_back({g, AtomOp::kLt});
  LinearExpr le = LinearExpr::Var(0);
  le.Add(LinearExpr::Var(2), -1.0);
  conj.push_back({le, AtomOp::kLe});
  Conjunction out = EliminateVarFme(conj, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op, AtomOp::kLt);
}

// ----- Quantifier elimination vs brute force ---------------------------------

/// Evaluates a formula with quantifiers by brute force over the integer
/// grid [-range, range]^bound for quantified variables.
bool BruteForce(const Formula& f, std::vector<double>* assignment,
                int range) {
  switch (f.kind) {
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      size_t var = static_cast<size_t>(f.var);
      if (assignment->size() <= var) assignment->resize(var + 1, 0.0);
      double saved = (*assignment)[var];
      bool exists = f.kind == FormulaKind::kExists;
      bool result = !exists;
      for (int v = -range; v <= range; ++v) {
        (*assignment)[var] = v;
        bool sub = BruteForce(*f.children[0], assignment, range);
        if (exists && sub) {
          result = true;
          break;
        }
        if (!exists && !sub) {
          result = false;
          break;
        }
      }
      (*assignment)[var] = saved;
      return result;
    }
    case FormulaKind::kNot:
      return !BruteForce(*f.children[0], assignment, range);
    case FormulaKind::kAnd:
      for (const FormulaPtr& c : f.children) {
        if (!BruteForce(*c, assignment, range)) return false;
      }
      return true;
    case FormulaKind::kOr:
      for (const FormulaPtr& c : f.children) {
        if (BruteForce(*c, assignment, range)) return true;
      }
      return false;
    default:
      return EvalFormula(f, *assignment);
  }
}

/// Checks QE(f) == f pointwise on the grid for the free variables.
/// NOTE: brute force ranges over integers while QE reasons over the reals,
/// so only use formulas whose truth on integer grids matches the reals
/// within the tested range (all-integer coefficients, range wide enough).
void ExpectQeMatchesBruteForce(const FormulaPtr& f,
                               const std::vector<int>& free_vars, int range) {
  Result<FormulaPtr> eliminated = EliminateQuantifiers(f);
  ASSERT_TRUE(eliminated.ok()) << eliminated.status().ToString();
  EXPECT_FALSE(HasQuantifier(**eliminated));
  int max_var = 0;
  for (int v : free_vars) max_var = std::max(max_var, v);
  std::vector<double> assignment(static_cast<size_t>(max_var) + 1, 0.0);
  std::function<void(size_t)> sweep = [&](size_t i) {
    if (i == free_vars.size()) {
      std::vector<double> brute_assignment = assignment;
      bool expected = BruteForce(*f, &brute_assignment, range);
      bool actual = EvalFormula(**eliminated, assignment);
      ASSERT_EQ(expected, actual)
          << "at " << [&] {
               std::string s;
               for (int v : free_vars) {
                 s += std::to_string(assignment[static_cast<size_t>(v)]) + " ";
               }
               return s;
             }();
      return;
    }
    for (int v = -range; v <= range; ++v) {
      assignment[static_cast<size_t>(free_vars[i])] = v;
      sweep(i + 1);
    }
  };
  sweep(0);
}

TEST(Qe, ExistsBetween) {
  // exists x: a <= x and x <= b   <=>   a <= b.
  FormulaPtr f = MakeExists(
      0, MakeAnd({AtomLe(LinearExpr::Var(1), LinearExpr::Var(0)),
                  AtomLe(LinearExpr::Var(0), LinearExpr::Var(2))}));
  ExpectQeMatchesBruteForce(f, {1, 2}, 4);
}

TEST(Qe, ForallImplication) {
  // forall x: (x > a) => (x > b)   <=>   b <= a.
  FormulaPtr theta_a = AtomLt(LinearExpr::Var(1), LinearExpr::Var(0));
  FormulaPtr theta_b = AtomLt(LinearExpr::Var(2), LinearExpr::Var(0));
  FormulaPtr f = MakeForall(0, MakeOr({MakeNot(theta_a), theta_b}));
  ExpectQeMatchesBruteForce(f, {1, 2}, 4);
}

TEST(Qe, Example11SimplifiedSkyband) {
  // The paper's Example 11: forall xr, yr:
  //   (x' < xr and y' < yr) => (x < xr and y < yr)
  // must reduce to x <= x' and y <= y'.
  // vars: 0=xr, 1=yr, 2=x, 3=y, 4=x', 5=y'.
  FormulaPtr theta_prime =
      MakeAnd({AtomLt(LinearExpr::Var(4), LinearExpr::Var(0)),
               AtomLt(LinearExpr::Var(5), LinearExpr::Var(1))});
  FormulaPtr theta =
      MakeAnd({AtomLt(LinearExpr::Var(2), LinearExpr::Var(0)),
               AtomLt(LinearExpr::Var(3), LinearExpr::Var(1))});
  FormulaPtr f = MakeForall(
      0, MakeForall(1, MakeOr({MakeNot(theta_prime), theta})));
  Result<FormulaPtr> eliminated = EliminateQuantifiers(f);
  ASSERT_TRUE(eliminated.ok());
  // Check pointwise equivalence with x <= x' and y <= y'.
  for (int x = -2; x <= 2; ++x) {
    for (int y = -2; y <= 2; ++y) {
      for (int xp = -2; xp <= 2; ++xp) {
        for (int yp = -2; yp <= 2; ++yp) {
          std::vector<double> a = {0, 0, double(x), double(y), double(xp),
                                   double(yp)};
          EXPECT_EQ(EvalFormula(**eliminated, a), x <= xp && y <= yp)
              << x << " " << y << " " << xp << " " << yp;
        }
      }
    }
  }
  // And the DNF must be exactly two atoms.
  EXPECT_EQ((*eliminated)->kind, FormulaKind::kAnd);
  EXPECT_EQ((*eliminated)->children.size(), 2u);
}

TEST(Qe, NestedAlternation) {
  // exists x forall y: y >= x  is false over the reals (y unbounded below);
  // with free var none, QE must produce FALSE.
  FormulaPtr f = MakeExists(
      0, MakeForall(1, AtomLe(LinearExpr::Var(0), LinearExpr::Var(1))));
  Result<FormulaPtr> eliminated = EliminateQuantifiers(f);
  ASSERT_TRUE(eliminated.ok());
  EXPECT_EQ((*eliminated)->kind, FormulaKind::kFalse);
}

TEST(Qe, ExistsUnconstrainedIsTrue) {
  FormulaPtr f = MakeExists(0, AtomLe(LinearExpr::Var(1),
                                      LinearExpr::Var(0)));
  Result<FormulaPtr> eliminated = EliminateQuantifiers(f);
  ASSERT_TRUE(eliminated.ok());
  EXPECT_EQ((*eliminated)->kind, FormulaKind::kTrue);
}

TEST(Qe, EqualityChains) {
  // forall z: (z = a) => (z = b)   <=>   a = b.
  FormulaPtr f = MakeForall(
      0, MakeOr({MakeNot(AtomEq(LinearExpr::Var(0), LinearExpr::Var(1))),
                 AtomEq(LinearExpr::Var(0), LinearExpr::Var(2))}));
  ExpectQeMatchesBruteForce(f, {1, 2}, 3);
}

TEST(Qe, DisjunctiveTheta) {
  // forall x: (x > a or x < b) stays true iff a < b... over integers the
  // grid check validates whatever the real-arithmetic answer is.
  FormulaPtr f = MakeForall(
      0, MakeOr({AtomLt(LinearExpr::Var(1), LinearExpr::Var(0)),
                 AtomLt(LinearExpr::Var(0), LinearExpr::Var(2))}));
  ExpectQeMatchesBruteForce(f, {1, 2}, 3);
}

TEST(SimplifyToDnf, AbsorbsRedundantDisjuncts) {
  FormulaPtr a = AtomLe(LinearExpr::Var(0), LinearExpr::Var(1));
  FormulaPtr b = AtomLe(LinearExpr::Var(2), LinearExpr::Var(3));
  // a or (a and b) == a.
  Result<FormulaPtr> s = SimplifyToDnf(MakeOr({a, MakeAnd({a, b})}));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)->kind, FormulaKind::kAtom);
}

TEST(SimplifyToDnf, DropsContradictoryDisjunct) {
  LinearExpr one(1.0);
  FormulaPtr contradiction = MakeAnd(
      {AtomLe(LinearExpr::Var(0), LinearExpr(0.0)),
       AtomLe(one, LinearExpr(0.0))});  // 1 <= 0
  FormulaPtr ok = AtomLe(LinearExpr::Var(1), LinearExpr(0.0));
  Result<FormulaPtr> s = SimplifyToDnf(MakeOr({contradiction, ok}));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)->kind, FormulaKind::kAtom);
}

}  // namespace
}  // namespace fme
}  // namespace iceberg
