// Edge-case and failure-injection tests across the whole stack: empty
// relations, NULL-bearing data flowing through joins / aggregates /
// NLJP, degenerate thresholds, and single-row inputs.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/engine/database.h"

namespace iceberg {
namespace {

void ExpectSame(const TablePtr& a, const TablePtr& b) {
  ASSERT_EQ(a->num_rows(), b->num_rows());
  std::vector<Row> ra = a->rows(), rb = b->rows();
  std::sort(ra.begin(), ra.end(), RowLess());
  std::sort(rb.begin(), rb.end(), RowLess());
  for (size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(CompareRows(ra[i], rb[i]), 0);
  }
}

Database ObjectDb(const std::vector<std::array<int, 3>>& rows) {
  Database db;
  EXPECT_TRUE(db.CreateTable("o", Schema({{"id", DataType::kInt64},
                                          {"x", DataType::kInt64},
                                          {"y", DataType::kInt64}}))
                  .ok());
  EXPECT_TRUE(db.DeclareKey("o", {"id"}).ok());
  for (const auto& r : rows) {
    EXPECT_TRUE(db.Insert("o", {Value::Int(r[0]), Value::Int(r[1]),
                                Value::Int(r[2])})
                    .ok());
  }
  return db;
}

constexpr char kSkyband[] =
    "SELECT L.id, COUNT(*) FROM o L, o R "
    "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
    "GROUP BY L.id HAVING COUNT(*) <= 2";

TEST(EdgeCases, EmptyTable) {
  Database db = ObjectDb({});
  auto base = db.Query(kSkyband);
  auto smart = db.QueryIceberg(kSkyband);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  EXPECT_EQ((*base)->num_rows(), 0u);
  EXPECT_EQ((*smart)->num_rows(), 0u);
}

TEST(EdgeCases, SingleRowSelfJoin) {
  Database db = ObjectDb({{1, 5, 5}});
  auto base = db.Query(kSkyband);
  auto smart = db.QueryIceberg(kSkyband);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(smart.ok());
  // A lone object is dominated by nobody: no candidate group, no output.
  EXPECT_EQ((*base)->num_rows(), 0u);
  ExpectSame(*base, *smart);
}

TEST(EdgeCases, AllIdenticalPoints) {
  // Strict dominance never holds between equal points.
  Database db = ObjectDb({{1, 3, 3}, {2, 3, 3}, {3, 3, 3}});
  auto base = db.Query(kSkyband);
  auto smart = db.QueryIceberg(kSkyband);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(smart.ok());
  EXPECT_EQ((*base)->num_rows(), 0u);
  ExpectSame(*base, *smart);
}

TEST(EdgeCases, ThresholdZeroAntiMonotone) {
  // COUNT(*) <= 0 can never hold for an existing group: empty everywhere.
  Database db = ObjectDb({{1, 1, 1}, {2, 2, 2}, {3, 3, 3}});
  const char* sql =
      "SELECT L.id, COUNT(*) FROM o L, o R "
      "WHERE L.x < R.x AND L.y < R.y GROUP BY L.id HAVING COUNT(*) <= 0";
  auto base = db.Query(sql);
  auto smart = db.QueryIceberg(sql);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(smart.ok());
  EXPECT_EQ((*base)->num_rows(), 0u);
  ExpectSame(*base, *smart);
}

TEST(EdgeCases, HugeThresholdMonotone) {
  Database db = ObjectDb({{1, 1, 1}, {2, 2, 2}, {3, 3, 3}});
  const char* sql =
      "SELECT L.id, COUNT(*) FROM o L, o R "
      "WHERE L.x <= R.x GROUP BY L.id HAVING COUNT(*) >= 1000000";
  auto base = db.Query(sql);
  auto smart = db.QueryIceberg(sql);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(smart.ok());
  EXPECT_EQ((*base)->num_rows(), 0u);
  ExpectSame(*base, *smart);
}

TEST(EdgeCases, NullsInJoinColumns) {
  // NULL coordinates never satisfy comparisons: those rows silently drop
  // out of the join on both engines.
  Database db;
  ASSERT_TRUE(db.CreateTable("o", Schema({{"id", DataType::kInt64},
                                          {"x", DataType::kInt64},
                                          {"y", DataType::kInt64}}))
                  .ok());
  ASSERT_TRUE(db.DeclareKey("o", {"id"}).ok());
  ASSERT_TRUE(
      db.Insert("o", {Value::Int(1), Value::Int(1), Value::Int(1)}).ok());
  ASSERT_TRUE(
      db.Insert("o", {Value::Int(2), Value::Null(), Value::Int(2)}).ok());
  ASSERT_TRUE(
      db.Insert("o", {Value::Int(3), Value::Int(3), Value::Null()}).ok());
  ASSERT_TRUE(
      db.Insert("o", {Value::Int(4), Value::Int(4), Value::Int(4)}).ok());
  const char* sql =
      "SELECT L.id, COUNT(*) FROM o L, o R "
      "WHERE L.x < R.x AND L.y < R.y GROUP BY L.id HAVING COUNT(*) >= 1";
  auto base = db.Query(sql);
  auto smart = db.QueryIceberg(sql);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  ASSERT_EQ((*base)->num_rows(), 1u);  // only id=1 (dominated by 4)
  ExpectSame(*base, *smart);
}

TEST(EdgeCases, NullAggregateInputs) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", Schema({{"g", DataType::kInt64},
                                          {"v", DataType::kInt64}}))
                  .ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(1), Value::Null()}).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(1), Value::Int(5)}).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(2), Value::Null()}).ok());
  auto r = db.Query(
      "SELECT g, COUNT(*), COUNT(v), SUM(v), MIN(v) FROM t GROUP BY g");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<Row> rows = (*r)->rows();
  std::sort(rows.begin(), rows.end(), RowLess());
  // g=1: COUNT(*)=2, COUNT(v)=1, SUM=5, MIN=5.
  EXPECT_EQ(rows[0][1].AsInt(), 2);
  EXPECT_EQ(rows[0][2].AsInt(), 1);
  EXPECT_EQ(rows[0][3].AsInt(), 5);
  // g=2: all-NULL group -> SUM/MIN NULL, COUNT(v)=0.
  EXPECT_EQ(rows[1][2].AsInt(), 0);
  EXPECT_TRUE(rows[1][3].is_null());
  EXPECT_TRUE(rows[1][4].is_null());
}

TEST(EdgeCases, MinHavingWithEmptyJoinsStaysSound) {
  // Regression for the empty-join pruning witness bug: MIN(R.x) >= c with
  // objects that join nothing must not poison the prune cache.
  Database db = ObjectDb({{1, 9, 9}, {2, 1, 1}, {3, 2, 2}, {4, 5, 1}});
  const char* sql =
      "SELECT L.id, COUNT(*) FROM o L, o R "
      "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
      "GROUP BY L.id HAVING MIN(R.x) >= 2";
  auto base = db.Query(sql);
  auto smart = db.QueryIceberg(sql);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  ExpectSame(*base, *smart);
}

TEST(EdgeCases, DuplicateLRowsCountDouble) {
  // Without a declared key, duplicate L rows contribute twice — on both
  // engines (pruning is then off, memoization merges partials).
  Database db;
  ASSERT_TRUE(db.CreateTable("o", Schema({{"g", DataType::kInt64},
                                          {"x", DataType::kInt64}}))
                  .ok());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(db.Insert("o", {Value::Int(1), Value::Int(1)}).ok());
  }
  ASSERT_TRUE(db.Insert("o", {Value::Int(2), Value::Int(2)}).ok());
  const char* sql =
      "SELECT L.g, COUNT(*) FROM o L, o R WHERE L.x < R.x "
      "GROUP BY L.g HAVING COUNT(*) >= 2";
  auto base = db.Query(sql);
  auto smart = db.QueryIceberg(sql);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(smart.ok());
  ASSERT_EQ((*base)->num_rows(), 1u);
  EXPECT_EQ((*base)->row(0)[1].AsInt(), 2);  // both duplicates counted
  ExpectSame(*base, *smart);
}

TEST(EdgeCases, SelfJoinThreeWay) {
  Database db = ObjectDb({{1, 1, 1}, {2, 2, 2}, {3, 3, 3}, {4, 4, 4}});
  const char* sql =
      "SELECT a.id, COUNT(*) FROM o a, o b, o c "
      "WHERE a.x < b.x AND b.x < c.x GROUP BY a.id HAVING COUNT(*) >= 1";
  auto base = db.Query(sql);
  auto smart = db.QueryIceberg(sql);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  ExpectSame(*base, *smart);
}

TEST(EdgeCases, CrossTypeComparisonIntDouble) {
  Database db;
  ASSERT_TRUE(db.CreateTable("t", Schema({{"id", DataType::kInt64},
                                          {"v", DataType::kDouble}}))
                  .ok());
  ASSERT_TRUE(db.DeclareKey("t", {"id"}).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(1), Value::Double(1.5)}).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(2), Value::Double(2.0)}).ok());
  ASSERT_TRUE(db.Insert("t", {Value::Int(3), Value::Double(2.5)}).ok());
  const char* sql =
      "SELECT a.id, COUNT(*) FROM t a, t b WHERE a.v < b.v "
      "GROUP BY a.id HAVING COUNT(*) <= 1";
  auto base = db.Query(sql);
  auto smart = db.QueryIceberg(sql);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  ExpectSame(*base, *smart);
}

}  // namespace
}  // namespace iceberg
