// Tests for the automatic subsumption-test generation of Section 5.2:
// derived p>= predicates are compared against the instance-oblivious
// ground truth (forall wr in a grid: Theta(w',wr) => Theta(w,wr)).

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "src/common/string_util.h"
#include "src/expr/evaluator.h"
#include "src/fme/subsumption.h"
#include "src/parser/parser.h"

namespace iceberg {
namespace {

using fme::DeriveSubsumption;
using fme::SubsumptionSpec;
using fme::SubsumptionTest;

/// Builds a spec for a two-relation layout: L columns at offsets
/// [0, l_names), R columns after them. Theta is parsed from SQL and bound
/// by name ("l.<name>" / "r.<name>").
SubsumptionSpec MakeSpec(const std::vector<std::string>& l_names,
                         const std::vector<std::string>& r_names,
                         const std::string& theta_sql,
                         std::vector<DataType> types = {}) {
  SubsumptionSpec spec;
  ExprPtr theta = *ParseExpression(theta_sql);
  std::vector<Expr*> refs;
  CollectColumnRefs(theta, &refs);
  for (Expr* ref : refs) {
    bool left = EqualsIgnoreCase(ref->qualifier, "l");
    const auto& names = left ? l_names : r_names;
    for (size_t i = 0; i < names.size(); ++i) {
      if (EqualsIgnoreCase(names[i], ref->column)) {
        ref->resolved_index =
            static_cast<int>(left ? i : l_names.size() + i);
      }
    }
  }
  SplitConjuncts(theta, &spec.theta);
  for (size_t i = 0; i < l_names.size(); ++i) spec.binding_offsets.push_back(i);
  size_t l_count = l_names.size();
  spec.is_left_offset = [l_count](size_t off) { return off < l_count; };
  if (types.empty()) {
    types.assign(l_names.size() + r_names.size(), DataType::kInt64);
  }
  spec.types_by_offset = std::move(types);
  return spec;
}

/// Ground truth: does w subsume w' for EVERY R-instance? Equivalent to
/// forall wr: Theta(w', wr) => Theta(w, wr); checked over an integer grid.
bool GroundTruth(const SubsumptionSpec& spec, const Row& w, const Row& wp,
                 int range) {
  size_t r_width = spec.types_by_offset.size() - spec.binding_offsets.size();
  std::vector<int> wr(r_width, -range);
  auto theta_holds = [&](const Row& binding) {
    Row full = binding;
    for (int v : wr) full.push_back(Value::Int(v));
    for (const ExprPtr& conjunct : spec.theta) {
      if (!EvaluatePredicate(*conjunct, full)) return false;
    }
    return true;
  };
  while (true) {
    if (theta_holds(wp) && !theta_holds(w)) return false;
    size_t i = 0;
    for (; i < wr.size(); ++i) {
      if (wr[i] < range) {
        ++wr[i];
        break;
      }
      wr[i] = -range;
    }
    if (i == wr.size()) return true;
  }
}

/// Exhaustively compares the derived predicate against ground truth for
/// all w, w' in [0, domain)^k.
void CheckAgainstGroundTruth(const SubsumptionSpec& spec, int domain,
                             int wr_range) {
  Result<SubsumptionTest> test = DeriveSubsumption(spec);
  ASSERT_TRUE(test.ok()) << test.status().ToString();
  size_t k = spec.binding_offsets.size();
  std::vector<int> wv(k, 0), wpv(k, 0);
  std::function<void(size_t, std::vector<int>*, const std::function<void()>&)>
      sweep = [&](size_t i, std::vector<int>* out,
                  const std::function<void()>& then) {
        if (i == k) {
          then();
          return;
        }
        for (int v = 0; v < domain; ++v) {
          (*out)[i] = v;
          sweep(i + 1, out, then);
        }
      };
  size_t checked = 0;
  sweep(0, &wv, [&] {
    sweep(0, &wpv, [&] {
      Row w, wp;
      for (int v : wv) w.push_back(Value::Int(v));
      for (int v : wpv) wp.push_back(Value::Int(v));
      bool derived = test->Subsumes(w, wp);
      bool truth = GroundTruth(spec, w, wp, wr_range);
      ASSERT_EQ(derived, truth)
          << "w=" << RowToString(w) << " w'=" << RowToString(wp)
          << " derived p>=: " << test->ToString();
      ++checked;
    });
  });
  ASSERT_GT(checked, 0u);
}

TEST(Subsumption, SkybandSimplifiedJoin) {
  // Example 11: L.x < R.x AND L.y < R.y  ->  x <= x' and y <= y'.
  SubsumptionSpec spec =
      MakeSpec({"x", "y"}, {"x", "y"}, "l.x < r.x AND l.y < r.y");
  CheckAgainstGroundTruth(spec, 4, 5);
}

TEST(Subsumption, SkybandFullJoin) {
  // Example 12: the full strict-dominance condition with the OR clause.
  SubsumptionSpec spec = MakeSpec(
      {"x", "y"}, {"x", "y"},
      "l.x <= r.x AND l.y <= r.y AND (l.x < r.x OR l.y < r.y)");
  CheckAgainstGroundTruth(spec, 4, 5);
}

TEST(Subsumption, SkybandFullJoinMatchesPaperFormula) {
  SubsumptionSpec spec = MakeSpec(
      {"x", "y"}, {"x", "y"},
      "l.x <= r.x AND l.y <= r.y AND (l.x < r.x OR l.y < r.y)");
  Result<SubsumptionTest> test = DeriveSubsumption(spec);
  ASSERT_TRUE(test.ok());
  // Appendix B derives exactly x <= x' and y <= y'.
  Row w{Value::Int(1), Value::Int(2)};
  Row wp{Value::Int(1), Value::Int(2)};
  EXPECT_TRUE(test->Subsumes(w, wp));
  EXPECT_TRUE(test->Subsumes({Value::Int(0), Value::Int(2)}, wp));
  EXPECT_FALSE(test->Subsumes({Value::Int(2), Value::Int(2)}, wp));
  EXPECT_FALSE(test->IsNeverTrue());
  EXPECT_FALSE(test->IsEqualityOnly());
}

TEST(Subsumption, EqualityJoinDegeneratesToEquality) {
  SubsumptionSpec spec = MakeSpec({"k"}, {"k"}, "l.k = r.k");
  Result<SubsumptionTest> test = DeriveSubsumption(spec);
  ASSERT_TRUE(test.ok());
  EXPECT_TRUE(test->IsEqualityOnly());
  EXPECT_TRUE(test->Subsumes({Value::Int(3)}, {Value::Int(3)}));
  EXPECT_FALSE(test->Subsumes({Value::Int(3)}, {Value::Int(4)}));
  CheckAgainstGroundTruth(spec, 4, 5);
}

TEST(Subsumption, WeakDominanceFourDims) {
  // The pairs query (Listing 4): >= on all four dims plus one strict.
  SubsumptionSpec spec = MakeSpec(
      {"a", "b", "c", "d"}, {"a", "b", "c", "d"},
      "r.a >= l.a AND r.b >= l.b AND r.c >= l.c AND r.d >= l.d AND "
      "(r.a > l.a OR r.b > l.b OR r.c > l.c OR r.d > l.d)");
  Result<SubsumptionTest> test = DeriveSubsumption(spec);
  ASSERT_TRUE(test.ok()) << test.status().ToString();
  // Componentwise w <= w'.
  Row lo{Value::Int(1), Value::Int(1), Value::Int(1), Value::Int(1)};
  Row hi{Value::Int(2), Value::Int(1), Value::Int(3), Value::Int(1)};
  EXPECT_TRUE(test->Subsumes(lo, hi));
  EXPECT_FALSE(test->Subsumes(hi, lo));
  EXPECT_TRUE(test->Subsumes(lo, lo));
}

TEST(Subsumption, MixedDirections) {
  // L.x <= R.x AND L.y >= R.y: subsumption needs x <= x' and y >= y'.
  SubsumptionSpec spec =
      MakeSpec({"x", "y"}, {"x", "y"}, "l.x <= r.x AND l.y >= r.y");
  CheckAgainstGroundTruth(spec, 4, 5);
}

TEST(Subsumption, BandJoin) {
  // |L.x - R.x| <= 2 expressed linearly.
  SubsumptionSpec spec = MakeSpec(
      {"x"}, {"x"}, "l.x - r.x <= 2 AND r.x - l.x <= 2");
  CheckAgainstGroundTruth(spec, 5, 8);
}

TEST(Subsumption, ScaledComparison) {
  SubsumptionSpec spec = MakeSpec({"x"}, {"x"}, "2 * l.x < r.x");
  CheckAgainstGroundTruth(spec, 4, 10);
}

TEST(Subsumption, StringEqualityRouting) {
  // The complex query's T1.attr = S1.attr with string attr: handled as an
  // equality residue; the numeric part still derives.
  std::vector<DataType> types = {DataType::kString, DataType::kInt64,
                                 DataType::kString, DataType::kInt64};
  SubsumptionSpec spec = MakeSpec({"attr", "val"}, {"attr", "val"},
                                  "r.attr = l.attr AND r.val > l.val", types);
  Result<SubsumptionTest> test = DeriveSubsumption(spec);
  ASSERT_TRUE(test.ok()) << test.status().ToString();
  Row w{Value::Str("hits"), Value::Int(5)};
  Row wp_same{Value::Str("hits"), Value::Int(7)};
  Row wp_diff{Value::Str("sb"), Value::Int(7)};
  EXPECT_TRUE(test->Subsumes(w, wp_same));    // same attr, smaller val
  EXPECT_FALSE(test->Subsumes(wp_same, w));   // larger val
  EXPECT_FALSE(test->Subsumes(w, wp_diff));   // different attr
  std::vector<size_t> eq = test->EqualityPositions();
  EXPECT_EQ(eq, std::vector<size_t>{0});
}

TEST(Subsumption, NonLinearFailsGracefully) {
  SubsumptionSpec spec = MakeSpec({"x"}, {"x"}, "l.x * r.x > 4");
  Result<SubsumptionTest> test = DeriveSubsumption(spec);
  EXPECT_FALSE(test.ok());
  EXPECT_EQ(test.status().code(), StatusCode::kNotSupported);
}

TEST(Subsumption, EqualityPositionsFromFormula) {
  // Numeric equality is expressed inside the formula (not the residue) but
  // EqualityPositions must still find it.
  SubsumptionSpec spec = MakeSpec({"c", "v"}, {"c", "v"},
                                  "l.c = r.c AND r.v > l.v");
  Result<SubsumptionTest> test = DeriveSubsumption(spec);
  ASSERT_TRUE(test.ok()) << test.status().ToString();
  std::vector<size_t> eq = test->EqualityPositions();
  EXPECT_EQ(eq, std::vector<size_t>{0});
  CheckAgainstGroundTruth(spec, 3, 5);
}

TEST(Subsumption, RsideLocalPredicateIgnoredCorrectly) {
  // A predicate touching only R restricts both sides identically and must
  // not break the derivation.
  SubsumptionSpec spec =
      MakeSpec({"x"}, {"x", "z"}, "l.x < r.x AND r.z > 0");
  CheckAgainstGroundTruth(spec, 4, 4);
}

TEST(Subsumption, ArithmeticInTheta) {
  SubsumptionSpec spec =
      MakeSpec({"x", "y"}, {"x"}, "l.x + l.y < r.x");
  CheckAgainstGroundTruth(spec, 3, 8);
}

}  // namespace
}  // namespace iceberg
