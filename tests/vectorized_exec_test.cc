// Differential tests for the vectorized columnar execution path: batch
// predicate evaluation (FilterBatch) must agree lane-for-lane with the
// scalar reference (RunPredicate) on generated predicates over mixed
// int/double/string/NULL data; zone-map refutation must be sound at chunk
// boundaries; and flipping the vectorize chicken bit must not change any
// workload query result on either engine, at any thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench/workload_queries.h"
#include "src/engine/database.h"
#include "src/exec/exec_options.h"
#include "src/exec/governor.h"
#include "src/expr/compiled.h"
#include "src/expr/evaluator.h"
#include "src/expr/expr.h"
#include "src/storage/column_chunk.h"
#include "src/storage/table.h"

namespace iceberg {
namespace {

// Restores the process-wide vectorize flag when a test that flips it
// exits, including via an assertion failure. Tests that assert vectorized
// counters pin the flag on first, so the suite also passes when launched
// with ICEBERG_VECTORIZE=0 (the CI chicken-bit sweep).
struct VectorizeFlagGuard {
  bool saved = VectorizedExecEnabled();
  ~VectorizeFlagGuard() { SetVectorizedExecEnabled(saved); }
};

// Same contract for the predicate-transfer bit: tests that assert
// transfer counters pin it on first, so the suite also passes under the
// ICEBERG_PREDICATE_TRANSFER=0 CI sweep.
struct TransferFlagGuard {
  bool saved = PredicateTransferEnabled();
  ~TransferFlagGuard() { SetPredicateTransferEnabled(saved); }
};

ExprPtr ColAt(int index) {
  ExprPtr c = Col("c" + std::to_string(index));
  c->resolved_index = index;
  return c;
}

// Row layout of the generator: c0..c2 int64, c3..c4 double, c5 string.
constexpr int kNumIntCols = 3;
constexpr int kNumDoubleCols = 2;
constexpr int kStringCol = 5;
constexpr int kNumCols = 6;

class PredGen {
 public:
  explicit PredGen(uint32_t seed) : rng_(seed) {}

  // Arithmetic operands are generated string-free, matching the compiled
  // engine's documented carve-out (see compiled_expr_test.cc).
  ExprPtr Make(int depth, bool allow_string) {
    if (depth <= 0 || Pick(4) == 0) return Leaf(allow_string);
    switch (Pick(6)) {
      case 0: {
        static const BinaryOp kCmp[] = {BinaryOp::kEq, BinaryOp::kNe,
                                        BinaryOp::kLt, BinaryOp::kLe,
                                        BinaryOp::kGt, BinaryOp::kGe};
        return Bin(kCmp[Pick(6)], Make(depth - 1, true),
                   Make(depth - 1, true));
      }
      case 1: {
        static const BinaryOp kArith[] = {BinaryOp::kAdd, BinaryOp::kSub,
                                          BinaryOp::kMul, BinaryOp::kDiv};
        return Bin(kArith[Pick(4)], Make(depth - 1, false),
                   Make(depth - 1, false));
      }
      case 2:
        return Bin(BinaryOp::kAnd, Make(depth - 1, true),
                   Make(depth - 1, true));
      case 3:
        return Bin(BinaryOp::kOr, Make(depth - 1, true),
                   Make(depth - 1, true));
      case 4:
        return Not(Make(depth - 1, true));
      default:
        return Neg(Make(depth - 1, false));
    }
  }

  Row MakeRow() {
    Row row;
    row.reserve(kNumCols);
    for (int i = 0; i < kNumIntCols; ++i) {
      row.push_back(Pick(6) == 0 ? Value::Null() : Value::Int(Pick(9) - 4));
    }
    for (int i = 0; i < kNumDoubleCols; ++i) {
      row.push_back(Pick(6) == 0 ? Value::Null()
                                 : Value::Double((Pick(9) - 4) * 0.5));
    }
    switch (Pick(4)) {
      case 0: row.push_back(Value::Null()); break;
      case 1: row.push_back(Value::Str("")); break;
      case 2: row.push_back(Value::Str("abc")); break;
      default: row.push_back(Value::Str("zz")); break;
    }
    return row;
  }

 private:
  int Pick(int n) { return static_cast<int>(rng_() % n); }

  ExprPtr Leaf(bool allow_string) {
    switch (Pick(allow_string ? 6 : 5)) {
      case 0: return LitInt(Pick(9) - 4);
      case 1: return LitDouble((Pick(9) - 4) * 0.5);
      case 2: return Lit(Value::Null());
      case 3: return ColAt(Pick(kNumIntCols));
      case 4: return ColAt(kNumIntCols + Pick(kNumDoubleCols));
      default: return ColAt(kStringCol);
    }
  }

  std::mt19937 rng_;
};

Schema GenSchema() {
  return Schema({{"c0", DataType::kInt64},
                 {"c1", DataType::kInt64},
                 {"c2", DataType::kInt64},
                 {"c3", DataType::kDouble},
                 {"c4", DataType::kDouble},
                 {"c5", DataType::kString}});
}

// ---------------------------------------------------------------------------
// FilterBatch vs RunPredicate, lane for lane
// ---------------------------------------------------------------------------

TEST(VectorizedBatchTest, GeneratedPredicatesMatchScalarPath) {
  PredGen gen(20260807);
  Table table(GenSchema());
  // Spans several chunks, with a deliberately degenerate tail chunk.
  const size_t kRows = 2 * ColumnChunkSet::kChunkRows + 123;
  for (size_t i = 0; i < kRows; ++i) table.AppendUnchecked(gen.MakeRow());
  ColumnChunkSetPtr chunks = table.GetOrBuildChunks();
  ASSERT_EQ(chunks->num_rows(), kRows);
  ASSERT_EQ(chunks->chunks().size(), 3u);

  EvalScratch eval;
  BatchScratch batch;
  std::vector<uint32_t> sel(ColumnChunkSet::kChunkRows);
  for (int p = 0; p < 300; ++p) {
    ExprPtr e = gen.Make(4, true);
    CompiledExpr prog = CompiledExpr::Compile(*e);
    ASSERT_TRUE(prog.valid()) << e->ToString();
    ASSERT_TRUE(prog.batchable()) << e->ToString();
    for (const ColumnChunk& chunk : chunks->chunks()) {
      const bool refuted =
          prog.has_zone_checks() && prog.ZoneRefutes(chunk, 0, nullptr);
      for (size_t k = 0; k < chunk.rows; ++k) {
        sel[k] = static_cast<uint32_t>(k);
      }
      size_t n = prog.FilterBatch(chunk, 0, nullptr, sel.data(), chunk.rows,
                                  sel.data(), &batch);
      // Reference: scalar evaluation over the materialized rows.
      size_t expect = 0;
      for (size_t k = 0; k < chunk.rows; ++k) {
        const Row& row = table.row(chunk.begin + k);
        if (prog.RunPredicate(row, &eval)) {
          ASSERT_LT(expect, n) << e->ToString() << " lane " << k;
          ASSERT_EQ(sel[expect], k) << e->ToString();
          ++expect;
          // Zone refutation must never disagree with a passing row.
          ASSERT_FALSE(refuted) << e->ToString() << " row " << k;
        }
      }
      ASSERT_EQ(expect, n) << e->ToString();
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(VectorizedBatchTest, OuterPrefixBroadcastMatchesScalarPath) {
  // Slots < base broadcast from the outer prefix (the joined partial row):
  // predicates mix outer slots (0..5) with chunk slots (6..11).
  PredGen gen(7);
  Table table(GenSchema());
  const size_t kRows = ColumnChunkSet::kChunkRows + 77;
  for (size_t i = 0; i < kRows; ++i) table.AppendUnchecked(gen.MakeRow());
  ColumnChunkSetPtr chunks = table.GetOrBuildChunks();
  const size_t base = kNumCols;

  auto shift = [&](const ExprPtr& e, auto&& self) -> void {
    if (e->kind == ExprKind::kColumnRef && e->resolved_index >= 0 &&
        (e->children.empty())) {
      // Move half of the refs into the chunk's slot range.
      if (e->resolved_index % 2 == 0) e->resolved_index += base;
    }
    for (const ExprPtr& c : e->children) self(c, self);
  };

  EvalScratch eval;
  BatchScratch batch;
  std::vector<uint32_t> sel(ColumnChunkSet::kChunkRows);
  for (int p = 0; p < 150; ++p) {
    ExprPtr e = gen.Make(3, true);
    shift(e, shift);
    CompiledExpr prog = CompiledExpr::Compile(*e);
    ASSERT_TRUE(prog.valid());
    Row partial = gen.MakeRow();  // the outer prefix
    for (const ColumnChunk& chunk : chunks->chunks()) {
      const bool refuted =
          prog.has_zone_checks() && prog.ZoneRefutes(chunk, base, &partial);
      for (size_t k = 0; k < chunk.rows; ++k) {
        sel[k] = static_cast<uint32_t>(k);
      }
      size_t n = prog.FilterBatch(chunk, base, &partial, sel.data(),
                                  chunk.rows, sel.data(), &batch);
      size_t expect = 0;
      Row joined = partial;
      for (size_t k = 0; k < chunk.rows; ++k) {
        const Row& inner = table.row(chunk.begin + k);
        joined.resize(base);
        joined.insert(joined.end(), inner.begin(), inner.end());
        if (prog.RunPredicate(joined, &eval)) {
          ASSERT_LT(expect, n) << e->ToString() << " lane " << k;
          ASSERT_EQ(sel[expect], k) << e->ToString();
          ++expect;
          ASSERT_FALSE(refuted) << e->ToString() << " row " << k;
        }
      }
      ASSERT_EQ(expect, n) << e->ToString();
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// ---------------------------------------------------------------------------
// Zone maps: boundary values, NULL columns, soundness
// ---------------------------------------------------------------------------

TEST(VectorizedZoneTest, BoundaryValuesRefuteExactly) {
  // c0 = row index, sorted, so chunk z has zone [z*1024, z*1024+1023].
  Table table(Schema({{"c0", DataType::kInt64}}));
  const int64_t kRows = 3 * static_cast<int64_t>(ColumnChunkSet::kChunkRows);
  for (int64_t i = 0; i < kRows; ++i) {
    table.AppendUnchecked({Value::Int(i)});
  }
  ColumnChunkSetPtr chunks = table.GetOrBuildChunks();
  ASSERT_EQ(chunks->chunks().size(), 3u);
  const ColumnChunk& mid = chunks->chunks()[1];  // zone [1024, 2047]

  struct Case {
    BinaryOp op;
    int64_t lit;
    bool refuted;
  };
  const Case cases[] = {
      {BinaryOp::kLe, 1023, true},   {BinaryOp::kLe, 1024, false},
      {BinaryOp::kLt, 1024, true},   {BinaryOp::kLt, 1025, false},
      {BinaryOp::kGe, 2048, true},   {BinaryOp::kGe, 2047, false},
      {BinaryOp::kGt, 2047, true},   {BinaryOp::kGt, 2046, false},
      {BinaryOp::kEq, 1500, false},  {BinaryOp::kEq, 2048, true},
      {BinaryOp::kEq, 1023, true},   {BinaryOp::kNe, 1500, false},
  };
  for (const Case& c : cases) {
    CompiledExpr prog =
        CompiledExpr::Compile(*Bin(c.op, ColAt(0), LitInt(c.lit)));
    ASSERT_TRUE(prog.has_zone_checks());
    EXPECT_EQ(prog.ZoneRefutes(mid, 0, nullptr), c.refuted)
        << "op=" << static_cast<int>(c.op) << " lit=" << c.lit;
  }

  // Double literals against the int zone, including fractional boundaries.
  CompiledExpr lt = CompiledExpr::Compile(*Bin(BinaryOp::kLt, ColAt(0),
                                               LitDouble(1024.5)));
  EXPECT_FALSE(lt.ZoneRefutes(mid, 0, nullptr));
  CompiledExpr lt2 = CompiledExpr::Compile(*Bin(BinaryOp::kLt, ColAt(0),
                                                LitDouble(1023.5)));
  EXPECT_TRUE(lt2.ZoneRefutes(mid, 0, nullptr));
}

TEST(VectorizedZoneTest, NullAndStringColumnsNeverMisfire) {
  Table table(Schema({{"c0", DataType::kInt64}, {"c1", DataType::kString}}));
  for (size_t i = 0; i < ColumnChunkSet::kChunkRows; ++i) {
    table.AppendUnchecked({Value::Null(), Value::Str("s")});
  }
  ColumnChunkSetPtr chunks = table.GetOrBuildChunks();
  const ColumnChunk& chunk = chunks->chunks()[0];
  // All-NULL column: any comparison against it is NULL on every row, so
  // refutation is sound (and expected).
  CompiledExpr p0 = CompiledExpr::Compile(*Bin(BinaryOp::kGe, ColAt(0),
                                               LitInt(0)));
  EXPECT_TRUE(p0.ZoneRefutes(chunk, 0, nullptr));
  // String column: no numeric zone; never refuted.
  ExprPtr c1 = Col("c1");
  c1->resolved_index = 1;
  CompiledExpr p1 = CompiledExpr::Compile(
      *Bin(BinaryOp::kEq, std::move(c1), Lit(Value::Str("s"))));
  EXPECT_FALSE(p1.ZoneRefutes(chunk, 0, nullptr));
}

TEST(VectorizedZoneTest, DisjunctionsAreNotExtractedAsZoneChecks) {
  // (c0 < 0 OR c0 > 5): neither disjunct alone may refute a chunk.
  ExprPtr e = Bin(BinaryOp::kOr, Bin(BinaryOp::kLt, ColAt(0), LitInt(0)),
                  Bin(BinaryOp::kGt, ColAt(0), LitInt(5)));
  CompiledExpr prog = CompiledExpr::Compile(*e);
  EXPECT_FALSE(prog.has_zone_checks());
  // But conjuncts on both sides of a top-level AND are.
  ExprPtr a = Bin(BinaryOp::kAnd, Bin(BinaryOp::kGe, ColAt(0), LitInt(0)),
                  Bin(BinaryOp::kLe, ColAt(1), LitInt(9)));
  EXPECT_TRUE(CompiledExpr::Compile(*a).has_zone_checks());
}

// ---------------------------------------------------------------------------
// End-to-end: chicken bit on/off, both engines, 1 and 8 threads
// ---------------------------------------------------------------------------

void ExpectSameRows(const TablePtr& a, const TablePtr& b,
                    const std::string& ctx) {
  ASSERT_EQ(a->num_rows(), b->num_rows()) << ctx;
  std::vector<Row> ra = a->rows(), rb = b->rows();
  std::sort(ra.begin(), ra.end(), RowLess());
  std::sort(rb.begin(), rb.end(), RowLess());
  for (size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(CompareRows(ra[i], rb[i]), 0) << ctx << " row " << i;
  }
}

TEST(VectorizedWorkloadTest, OnOffIdenticalResults) {
  VectorizeFlagGuard guard;
  // Large enough that the score table spans multiple column chunks.
  std::unique_ptr<Database> db = bench::MakeScoreDb(1500);
  for (const bench::NamedQuery& q : bench::Figure1Queries()) {
    for (int threads : {1, 8}) {
      ExecOptions exec;
      exec.num_threads = threads;
      SetVectorizedExecEnabled(true);
      Result<TablePtr> on = db->Query(q.sql, exec);
      SetVectorizedExecEnabled(false);
      Result<TablePtr> off = db->Query(q.sql, exec);
      SetVectorizedExecEnabled(true);
      ASSERT_TRUE(on.ok()) << q.name << ": " << on.status().ToString();
      ASSERT_TRUE(off.ok()) << q.name << ": " << off.status().ToString();
      ExpectSameRows(*on, *off,
                     q.name + " baseline t=" + std::to_string(threads));
      if (::testing::Test::HasFatalFailure()) return;

      IcebergOptions iceberg;
      iceberg.base_exec.num_threads = threads;
      SetVectorizedExecEnabled(true);
      Result<TablePtr> ion = db->QueryIceberg(q.sql, iceberg);
      SetVectorizedExecEnabled(false);
      Result<TablePtr> ioff = db->QueryIceberg(q.sql, iceberg);
      SetVectorizedExecEnabled(true);
      ASSERT_TRUE(ion.ok()) << q.name << ": " << ion.status().ToString();
      ASSERT_TRUE(ioff.ok()) << q.name << ": " << ioff.status().ToString();
      ExpectSameRows(*ion, *ioff,
                     q.name + " nljp t=" + std::to_string(threads));
      ExpectSameRows(*on, *ion, q.name + " engines");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(VectorizedWorkloadTest, PerQueryOptionDisablesVectorization) {
  VectorizeFlagGuard guard;
  SetVectorizedExecEnabled(true);
  std::unique_ptr<Database> db = bench::MakeScoreDb(1500);
  const std::string sql = bench::SkybandSql("hits", "hruns", 50);
  // Force the block-nested-loop plan: the ordered-index range scan would
  // otherwise win the inner level and nothing would vectorize.
  ExecOptions on;
  on.use_indexes = false;
  ExecStats on_stats;
  Result<TablePtr> with = db->Query(sql, on, &on_stats);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  EXPECT_GT(on_stats.batch_rows, 0u);

  ExecOptions off;
  off.use_indexes = false;
  off.vectorize = false;
  ExecStats off_stats;
  Result<TablePtr> without = db->Query(sql, off, &off_stats);
  ASSERT_TRUE(without.ok()) << without.status().ToString();
  EXPECT_EQ(off_stats.batch_rows, 0u);
  ExpectSameRows(*with, *without, "per-query vectorize option");
  // Counter identity across the paths: the row-at-a-time reference and the
  // vectorized path must examine the same pairs and join the same rows.
  EXPECT_EQ(on_stats.join_pairs_examined, off_stats.join_pairs_examined);
  EXPECT_EQ(on_stats.rows_joined, off_stats.rows_joined);
}

// ---------------------------------------------------------------------------
// Predicate transfer over a skewed two-table join (both directions)
// ---------------------------------------------------------------------------

class TransferJoinTest : public ::testing::Test {
 protected:
  // big: 4096 rows (id in [0, 512) so some ids exist in small, val = i).
  // small: 32 rows (id in [0, 64) stepped by 2, w = id * 10).
  void SetUp() override {
    SetVectorizedExecEnabled(true);
    SetPredicateTransferEnabled(true);
    ASSERT_TRUE(db_.CreateTable("big", Schema({{"id", DataType::kInt64},
                                               {"val", DataType::kInt64}}))
                    .ok());
    ASSERT_TRUE(db_.CreateTable("small", Schema({{"id", DataType::kInt64},
                                                 {"w", DataType::kInt64}}))
                    .ok());
    for (int64_t i = 0; i < 4096; ++i) {
      ASSERT_TRUE(db_.Insert("big", {Value::Int(i % 512), Value::Int(i)})
                      .ok());
    }
    for (int64_t i = 0; i < 64; i += 2) {
      ASSERT_TRUE(db_.Insert("small", {Value::Int(i), Value::Int(i * 10)})
                      .ok());
    }
  }

  VectorizeFlagGuard guard_;
  TransferFlagGuard transfer_guard_;
  Database db_;
};

TEST_F(TransferJoinTest, OuterShrunkByTransferIdenticalResults) {
  // Outer (big) >> inner (small): the small side's key set transfers to
  // the big scan, so big rows whose id has no small partner (odd ids, ids
  // >= 64) die before any join work.
  const std::string sql =
      "SELECT L.id, L.val, R.w FROM big L, small R "
      "WHERE L.id = R.id AND L.val >= 0";
  ExecOptions on;
  ExecStats on_stats;
  Result<TablePtr> with = db_.Query(sql, on, &on_stats);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  EXPECT_GT(on_stats.transfer_probes, 0u);
  EXPECT_GE(on_stats.transfer_probes, on_stats.transfer_hits);
  EXPECT_GT(on_stats.transfer_rows_eliminated, 0u);

  ExecOptions off;
  off.predicate_transfer = false;
  ExecStats off_stats;
  Result<TablePtr> without = db_.Query(sql, off, &off_stats);
  ASSERT_TRUE(without.ok()) << without.status().ToString();
  EXPECT_EQ(off_stats.transfer_probes, 0u);
  EXPECT_EQ(off_stats.transfer_passes, 0u);
  ExpectSameRows(*with, *without, "transfer vs no-transfer");
  EXPECT_GT((*with)->num_rows(), 0u);
  EXPECT_EQ(on_stats.rows_joined, off_stats.rows_joined);

  // Row-at-a-time path with transfer on: same answer again.
  ExecOptions row_on;
  row_on.vectorize = false;
  Result<TablePtr> row = db_.Query(sql, row_on);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  ExpectSameRows(*with, *row, "transfer row path");
}

TEST_F(TransferJoinTest, HashBuildShrunkByTransferIdenticalResults) {
  // Outer (small) << inner (big): the transferred outer key set keeps
  // non-matching big rows out of the kHashJoin hash build.
  const std::string sql =
      "SELECT L.id, L.w, R.val FROM small L, big R WHERE R.id = L.id";
  ExecOptions on;
  ExecStats on_stats;
  Result<TablePtr> with = db_.Query(sql, on, &on_stats);
  ASSERT_TRUE(with.ok()) << with.status().ToString();
  EXPECT_GT(on_stats.transfer_probes, 0u);
  EXPECT_GT(on_stats.transfer_rows_eliminated, 0u);

  ExecOptions off;
  off.predicate_transfer = false;
  off.vectorize = false;
  ExecStats off_stats;
  Result<TablePtr> without = db_.Query(sql, off, &off_stats);
  ASSERT_TRUE(without.ok()) << without.status().ToString();
  EXPECT_EQ(off_stats.transfer_probes, 0u);
  ExpectSameRows(*with, *without, "hash-build transfer");
  EXPECT_GT((*with)->num_rows(), 0u);
  EXPECT_EQ(on_stats.rows_joined, off_stats.rows_joined);
}

// ---------------------------------------------------------------------------
// Governor: budget pressure degrades to the row path, never to an error
// ---------------------------------------------------------------------------

TEST(VectorizedGovernorTest, BudgetPressureFallsBackToRowPath) {
  VectorizeFlagGuard guard;
  SetVectorizedExecEnabled(true);
  std::unique_ptr<Database> db = bench::MakeScoreDb(1500);
  const std::string sql = bench::SkybandSql("hits", "hruns", 50);

  ExecOptions plain;
  plain.use_indexes = false;  // seq-scan plan, so chunks are in play
  ExecStats plain_stats;
  Result<TablePtr> expected = db->Query(sql, plain, &plain_stats);
  ASSERT_TRUE(expected.ok());
  ASSERT_GT(plain_stats.batch_rows, 0u);

  // Deterministic pressure: every advisory chunk/transfer-filter
  // reservation is refused; mandatory reservations proceed.
  GovernorProbe probe;
  probe.on_reserve = [](size_t, size_t, const char* tag) {
    const std::string t(tag);
    if (t == "column-chunks" || t == "transfer-filter") {
      return Status::ResourceExhausted("injected pressure");
    }
    return Status::OK();
  };
  ExecOptions governed;
  governed.use_indexes = false;
  governed.governor = std::make_shared<QueryGovernor>(
      QueryGovernor::Limits{}, std::move(probe));
  ExecStats governed_stats;
  Result<TablePtr> degraded = db->Query(sql, governed, &governed_stats);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(governed_stats.batch_rows, 0u);
  EXPECT_EQ(governed_stats.chunks_skipped, 0u);
  ExpectSameRows(*expected, *degraded, "governed degradation");
}

// ---------------------------------------------------------------------------
// Chunk cache invalidation on table mutation
// ---------------------------------------------------------------------------

TEST(ColumnChunkTest, MutationInvalidatesCachedChunks) {
  Table table(GenSchema());
  PredGen gen(3);
  for (int i = 0; i < 100; ++i) table.AppendUnchecked(gen.MakeRow());
  ColumnChunkSetPtr first = table.GetOrBuildChunks();
  EXPECT_EQ(first->num_rows(), 100u);
  EXPECT_EQ(first->version(), table.version());
  // Cached: same snapshot back while the table is unchanged.
  EXPECT_EQ(table.GetOrBuildChunks().get(), first.get());

  table.AppendUnchecked(gen.MakeRow());
  EXPECT_NE(first->version(), table.version());
  ColumnChunkSetPtr second = table.GetOrBuildChunks();
  EXPECT_EQ(second->num_rows(), 101u);
  EXPECT_EQ(second->version(), table.version());
  // The old snapshot stays valid for readers that still hold it.
  EXPECT_EQ(first->num_rows(), 100u);
}

}  // namespace
}  // namespace iceberg
