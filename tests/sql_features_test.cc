// Tests for ORDER BY / LIMIT and their interaction with both engines.

#include <gtest/gtest.h>

#include "src/engine/database.h"

namespace iceberg {
namespace {

Database MakeDb() {
  Database db;
  EXPECT_TRUE(db.CreateTable("t", Schema({{"g", DataType::kInt64},
                                          {"v", DataType::kInt64}}))
                  .ok());
  int data[][2] = {{1, 30}, {2, 10}, {1, 20}, {3, 10}, {2, 40}, {3, 15}};
  for (auto& d : data) {
    EXPECT_TRUE(db.Insert("t", {Value::Int(d[0]), Value::Int(d[1])}).ok());
  }
  return db;
}

TEST(OrderBy, AscendingByOutputName) {
  Database db = MakeDb();
  auto r = db.Query("SELECT v FROM t ORDER BY v");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->num_rows(), 6u);
  for (size_t i = 1; i < 6; ++i) {
    EXPECT_LE((*r)->row(i - 1)[0].AsInt(), (*r)->row(i)[0].AsInt());
  }
}

TEST(OrderBy, DescendingAndOrdinal) {
  Database db = MakeDb();
  auto r = db.Query("SELECT g, v FROM t ORDER BY 2 DESC, g ASC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->row(0)[1].AsInt(), 40);
  EXPECT_EQ((*r)->row(5)[1].AsInt(), 10);
  // Tie at v=10 broken by g ascending: g=2 before g=3.
  EXPECT_EQ((*r)->row(4)[0].AsInt(), 2);
  EXPECT_EQ((*r)->row(5)[0].AsInt(), 3);
}

TEST(OrderBy, AliasResolution) {
  Database db = MakeDb();
  auto r = db.Query(
      "SELECT g, SUM(v) AS total FROM t GROUP BY g ORDER BY total DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->num_rows(), 3u);
  // totals: g=1 -> 50, g=2 -> 50, g=3 -> 25; descending by total.
  EXPECT_EQ((*r)->row(0)[1].AsInt(), 50);
  EXPECT_EQ((*r)->row(1)[1].AsInt(), 50);
  EXPECT_EQ((*r)->row(2)[1].AsInt(), 25);
}

TEST(OrderBy, Limit) {
  Database db = MakeDb();
  auto r = db.Query("SELECT v FROM t ORDER BY v LIMIT 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->num_rows(), 2u);
  EXPECT_EQ((*r)->row(0)[0].AsInt(), 10);
  EXPECT_EQ((*r)->row(1)[0].AsInt(), 10);
}

TEST(OrderBy, LimitWithoutOrder) {
  Database db = MakeDb();
  auto r = db.Query("SELECT v FROM t LIMIT 4");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 4u);
}

TEST(OrderBy, LimitLargerThanResult) {
  Database db = MakeDb();
  auto r = db.Query("SELECT v FROM t LIMIT 100");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 6u);
}

TEST(OrderBy, OrdinalOutOfRangeRejected) {
  Database db = MakeDb();
  EXPECT_FALSE(db.Query("SELECT v FROM t ORDER BY 2").ok());
  EXPECT_FALSE(db.Query("SELECT v FROM t ORDER BY 0").ok());
}

TEST(OrderBy, UnknownColumnRejected) {
  Database db = MakeDb();
  EXPECT_FALSE(db.Query("SELECT v FROM t ORDER BY nope").ok());
}

TEST(OrderBy, WorksThroughIcebergPath) {
  Database db = MakeDb();
  ASSERT_TRUE(db.DeclareKey("t", {"g", "v"}).ok());
  const char* sql =
      "SELECT a.g, COUNT(*) AS n FROM t a, t b WHERE a.g = b.g "
      "GROUP BY a.g HAVING COUNT(*) >= 4 ORDER BY n DESC LIMIT 1";
  auto base = db.Query(sql);
  auto smart = db.QueryIceberg(sql);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_TRUE(smart.ok()) << smart.status().ToString();
  ASSERT_EQ((*base)->num_rows(), (*smart)->num_rows());
  ASSERT_EQ((*base)->num_rows(), 1u);
  EXPECT_EQ(CompareRows((*base)->row(0), (*smart)->row(0)), 0);
}

TEST(OrderBy, StableSortPreservesTies) {
  Database db = MakeDb();
  auto r = db.Query("SELECT g, v FROM t ORDER BY g");
  ASSERT_TRUE(r.ok());
  // Within g=1, the original insertion order (30 then 20) is preserved.
  EXPECT_EQ((*r)->row(0)[1].AsInt(), 30);
  EXPECT_EQ((*r)->row(1)[1].AsInt(), 20);
}

TEST(OrderBy, ParserRendersOrderAndLimit) {
  auto parsed = ParseSql("SELECT v FROM t ORDER BY v DESC LIMIT 3");
  ASSERT_TRUE(parsed.ok());
  std::string text = parsed->ToString();
  EXPECT_NE(text.find("ORDER BY v DESC"), std::string::npos);
  EXPECT_NE(text.find("LIMIT 3"), std::string::npos);
}

}  // namespace
}  // namespace iceberg
