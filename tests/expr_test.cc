// Unit tests for src/expr: AST helpers, three-valued evaluation, and the
// algebraic accumulator decomposition (f^i / f^o) used by memoization.

#include <gtest/gtest.h>

#include "src/expr/aggregate.h"
#include "src/expr/evaluator.h"
#include "src/expr/expr.h"

namespace iceberg {
namespace {

ExprPtr BoundCol(int index) {
  ExprPtr c = Col("t", "c" + std::to_string(index));
  c->resolved_index = index;
  return c;
}

TEST(Expr, ToStringRendersSql) {
  ExprPtr e = Bin(BinaryOp::kAnd,
                  Bin(BinaryOp::kGe, Agg(AggFunc::kCountStar, nullptr),
                      LitInt(3)),
                  Bin(BinaryOp::kLt, Col("t", "x"), LitInt(5)));
  EXPECT_EQ(e->ToString(), "(COUNT(*) >= 3 AND t.x < 5)");
}

TEST(Expr, FlipAndNegateComparisons) {
  EXPECT_EQ(FlipComparison(BinaryOp::kLt), BinaryOp::kGt);
  EXPECT_EQ(FlipComparison(BinaryOp::kGe), BinaryOp::kLe);
  EXPECT_EQ(FlipComparison(BinaryOp::kEq), BinaryOp::kEq);
  EXPECT_EQ(NegateComparison(BinaryOp::kLt), BinaryOp::kGe);
  EXPECT_EQ(NegateComparison(BinaryOp::kEq), BinaryOp::kNe);
}

TEST(Expr, SplitConjuncts) {
  ExprPtr e = AndAll({Col("a"), Col("b"), Col("c")});
  std::vector<ExprPtr> parts;
  SplitConjuncts(e, &parts);
  EXPECT_EQ(parts.size(), 3u);
}

TEST(Expr, AndAllEmptyIsTrue) {
  ExprPtr e = AndAll({});
  EXPECT_EQ(e->kind, ExprKind::kLiteral);
  EXPECT_TRUE(e->literal.AsBool());
}

TEST(Expr, CloneIsDeep) {
  ExprPtr original = Bin(BinaryOp::kAdd, BoundCol(0), LitInt(1));
  ExprPtr clone = CloneExpr(original);
  clone->children[0]->resolved_index = 7;
  EXPECT_EQ(original->children[0]->resolved_index, 0);
}

TEST(Expr, CollectAggregatesInOrder) {
  ExprPtr e = Bin(BinaryOp::kAnd,
                  Bin(BinaryOp::kGe, Agg(AggFunc::kCountStar, nullptr),
                      LitInt(1)),
                  Bin(BinaryOp::kLe, Agg(AggFunc::kSum, Col("x")),
                      LitInt(9)));
  std::vector<ExprPtr> aggs;
  CollectAggregates(e, &aggs);
  ASSERT_EQ(aggs.size(), 2u);
  EXPECT_EQ(aggs[0]->agg, AggFunc::kCountStar);
  EXPECT_EQ(aggs[1]->agg, AggFunc::kSum);
}

TEST(Expr, SignatureDistinguishesOffsets) {
  EXPECT_EQ(ExprSignature(*BoundCol(1)), ExprSignature(*BoundCol(1)));
  EXPECT_NE(ExprSignature(*BoundCol(1)), ExprSignature(*BoundCol(2)));
  EXPECT_NE(ExprSignature(*Agg(AggFunc::kSum, BoundCol(1))),
            ExprSignature(*Agg(AggFunc::kMin, BoundCol(1))));
}

// ----- Evaluator -----------------------------------------------------------

TEST(Evaluator, ArithmeticIntPreserving) {
  Row row{Value::Int(6), Value::Int(4)};
  ExprPtr e = Bin(BinaryOp::kMul, BoundCol(0), BoundCol(1));
  Value v = Evaluate(*e, row);
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 24);
}

TEST(Evaluator, DivisionYieldsDouble) {
  Row row{Value::Int(7), Value::Int(2)};
  Value v = Evaluate(*Bin(BinaryOp::kDiv, BoundCol(0), BoundCol(1)), row);
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.5);
}

TEST(Evaluator, DivisionByZeroIsNull) {
  Row row{Value::Int(7), Value::Int(0)};
  EXPECT_TRUE(
      Evaluate(*Bin(BinaryOp::kDiv, BoundCol(0), BoundCol(1)), row).is_null());
}

TEST(Evaluator, NullPropagatesThroughComparison) {
  Row row{Value::Null(), Value::Int(1)};
  Value v = Evaluate(*Bin(BinaryOp::kLt, BoundCol(0), BoundCol(1)), row);
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(
      EvaluatePredicate(*Bin(BinaryOp::kLt, BoundCol(0), BoundCol(1)), row));
}

TEST(Evaluator, ThreeValuedAnd) {
  Row row{Value::Null(), Value::Int(0), Value::Int(1)};
  // NULL AND FALSE = FALSE
  EXPECT_FALSE(Evaluate(*Bin(BinaryOp::kAnd, BoundCol(0), BoundCol(1)), row)
                   .is_null());
  EXPECT_FALSE(
      Evaluate(*Bin(BinaryOp::kAnd, BoundCol(0), BoundCol(1)), row).AsBool());
  // NULL AND TRUE = NULL
  EXPECT_TRUE(Evaluate(*Bin(BinaryOp::kAnd, BoundCol(0), BoundCol(2)), row)
                  .is_null());
}

TEST(Evaluator, ThreeValuedOr) {
  Row row{Value::Null(), Value::Int(0), Value::Int(1)};
  // NULL OR TRUE = TRUE
  EXPECT_TRUE(
      Evaluate(*Bin(BinaryOp::kOr, BoundCol(0), BoundCol(2)), row).AsBool());
  // NULL OR FALSE = NULL
  EXPECT_TRUE(Evaluate(*Bin(BinaryOp::kOr, BoundCol(0), BoundCol(1)), row)
                  .is_null());
}

TEST(Evaluator, NotOfNullIsNull) {
  Row row{Value::Null()};
  EXPECT_TRUE(Evaluate(*Not(BoundCol(0)), row).is_null());
}

TEST(Evaluator, AggregateValueLookup) {
  ExprPtr agg = Agg(AggFunc::kCountStar, nullptr);
  ExprPtr having = Bin(BinaryOp::kGe, agg, LitInt(10));
  AggValueMap values;
  values[agg.get()] = Value::Int(12);
  Row row;
  EXPECT_TRUE(EvaluatePredicate(*having, row, &values));
  values[agg.get()] = Value::Int(9);
  EXPECT_FALSE(EvaluatePredicate(*having, row, &values));
}

// ----- Accumulators --------------------------------------------------------

TEST(Accumulator, CountStarCountsNulls) {
  Accumulator acc(AggFunc::kCountStar);
  acc.Add(Value::Null());
  acc.Add(Value::Int(1));
  EXPECT_EQ(acc.Final().AsInt(), 2);
}

TEST(Accumulator, CountSkipsNulls) {
  Accumulator acc(AggFunc::kCount);
  acc.Add(Value::Null());
  acc.Add(Value::Int(1));
  EXPECT_EQ(acc.Final().AsInt(), 1);
}

TEST(Accumulator, SumIntStaysInt) {
  Accumulator acc(AggFunc::kSum);
  acc.Add(Value::Int(2));
  acc.Add(Value::Int(3));
  Value v = acc.Final();
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 5);
}

TEST(Accumulator, SumEmptyIsNull) {
  Accumulator acc(AggFunc::kSum);
  EXPECT_TRUE(acc.Final().is_null());
  acc.Add(Value::Null());
  EXPECT_TRUE(acc.Final().is_null());
}

TEST(Accumulator, AvgMixedTypes) {
  Accumulator acc(AggFunc::kAvg);
  acc.Add(Value::Int(1));
  acc.Add(Value::Double(2.0));
  EXPECT_DOUBLE_EQ(acc.Final().AsDouble(), 1.5);
}

TEST(Accumulator, MinMax) {
  Accumulator mn(AggFunc::kMin), mx(AggFunc::kMax);
  for (int v : {5, 3, 9}) {
    mn.Add(Value::Int(v));
    mx.Add(Value::Int(v));
  }
  EXPECT_EQ(mn.Final().AsInt(), 3);
  EXPECT_EQ(mx.Final().AsInt(), 9);
}

TEST(Accumulator, CountDistinct) {
  Accumulator acc(AggFunc::kCountDistinct);
  acc.Add(Value::Int(1));
  acc.Add(Value::Int(1));
  acc.Add(Value::Int(2));
  acc.Add(Value::Null());  // NULLs excluded
  EXPECT_EQ(acc.Final().AsInt(), 2);
}

TEST(Accumulator, AlgebraicClassification) {
  EXPECT_TRUE(IsAlgebraic(AggFunc::kCountStar));
  EXPECT_TRUE(IsAlgebraic(AggFunc::kSum));
  EXPECT_TRUE(IsAlgebraic(AggFunc::kAvg));
  EXPECT_TRUE(IsAlgebraic(AggFunc::kMin));
  EXPECT_FALSE(IsAlgebraic(AggFunc::kCountDistinct));
}

TEST(Accumulator, PartialArity) {
  EXPECT_EQ(PartialArity(AggFunc::kAvg), 2u);
  EXPECT_EQ(PartialArity(AggFunc::kSum), 1u);
  EXPECT_EQ(PartialArity(AggFunc::kCountStar), 1u);
}

/// Property: for every algebraic aggregate, splitting the input into two
/// partitions, taking partial states, and merging must equal the direct
/// computation (the defining property of Gray et al. algebraic functions).
class AlgebraicSplitTest : public ::testing::TestWithParam<AggFunc> {};

TEST_P(AlgebraicSplitTest, PartialMergeEqualsDirect) {
  AggFunc func = GetParam();
  std::vector<int> values = {4, -2, 7, 7, 0, 13, -5, 9};
  for (size_t split = 0; split <= values.size(); ++split) {
    Accumulator direct(func), left(func), right(func);
    for (size_t i = 0; i < values.size(); ++i) {
      direct.Add(Value::Int(values[i]));
      (i < split ? left : right).Add(Value::Int(values[i]));
    }
    Accumulator merged(func);
    merged.MergePartial(left.PartialState());
    merged.MergePartial(right.PartialState());
    EXPECT_EQ(merged.Final().Compare(direct.Final()), 0)
        << AggFuncName(func) << " split=" << split;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgebraic, AlgebraicSplitTest,
                         ::testing::Values(AggFunc::kCountStar,
                                           AggFunc::kCount, AggFunc::kSum,
                                           AggFunc::kMin, AggFunc::kMax,
                                           AggFunc::kAvg));

TEST(Accumulator, MergeFromHandlesDistinct) {
  Accumulator a(AggFunc::kCountDistinct), b(AggFunc::kCountDistinct);
  a.Add(Value::Int(1));
  a.Add(Value::Int(2));
  b.Add(Value::Int(2));
  b.Add(Value::Int(3));
  a.MergeFrom(b);
  EXPECT_EQ(a.Final().AsInt(), 3);
}

TEST(Accumulator, MergePartialEmptyMinIsNoop) {
  Accumulator empty(AggFunc::kMin), acc(AggFunc::kMin);
  acc.Add(Value::Int(4));
  acc.MergePartial(empty.PartialState());
  EXPECT_EQ(acc.Final().AsInt(), 4);
}

}  // namespace
}  // namespace iceberg
