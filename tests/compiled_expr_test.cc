// Differential tests for the compiled expression engine and the packed key
// codecs: every compiled program must agree with the reference interpreter
// `Evaluate` on every row — including NULL three-valued logic, int<->double
// coercion, and short-circuit AND/OR — and PackedKey equality/hashing must
// coincide exactly with RowEq/Value::Hash on numeric keys. A final suite
// replays the full workload with the engine flipped on and off and demands
// identical result sets from both executors.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bench/workload_queries.h"
#include "src/engine/database.h"
#include "src/exec/key_codec.h"
#include "src/expr/compiled.h"
#include "src/expr/evaluator.h"
#include "src/expr/expr.h"

namespace iceberg {
namespace {

// Restores the process-wide compiled-engine flag (default: on) when a test
// that flips it exits, including via an assertion failure.
struct CompiledFlagGuard {
  ~CompiledFlagGuard() { SetCompiledExprEnabled(true); }
};

// Strict identity: same type alternative, same payload. (Value::operator==
// coerces 1 == 1.0; the compiled engine must preserve the exact alternative
// the interpreter produces, since group keys hash on it.)
void ExpectIdentical(const Value& a, const Value& b, const std::string& ctx) {
  ASSERT_EQ(a.type(), b.type())
      << ctx << ": " << a.ToString() << " vs " << b.ToString();
  if (a.is_null()) return;
  if (a.is_int()) {
    ASSERT_EQ(a.AsInt(), b.AsInt()) << ctx;
  } else if (a.is_double()) {
    ASSERT_EQ(a.AsDouble(), b.AsDouble()) << ctx;
  } else {
    ASSERT_EQ(a.AsString(), b.AsString()) << ctx;
  }
}

void ExpectSameOnRow(const Expr& e, const Row& row) {
  CompiledExpr prog = CompiledExpr::Compile(e);
  ASSERT_TRUE(prog.valid()) << e.ToString();
  EvalScratch scratch;
  Value compiled = prog.Run(row, &scratch);
  Value interpreted = Evaluate(e, row);
  ExpectIdentical(compiled, interpreted,
                  e.ToString() + " on " + RowToString(row));
  EXPECT_EQ(prog.RunPredicate(row, &scratch), interpreted.AsBool())
      << e.ToString() << " on " << RowToString(row);
}

// Bound column ref into the test row layout.
ExprPtr ColAt(int index) {
  ExprPtr c = Col("c" + std::to_string(index));
  c->resolved_index = index;
  return c;
}

// ---------------------------------------------------------------------------
// Generated expressions, compiled vs interpreted on every row
// ---------------------------------------------------------------------------

// Row layout of the generator: c0..c2 int64, c3..c4 double, c5 string.
constexpr int kNumIntCols = 3;
constexpr int kNumDoubleCols = 2;
constexpr int kStringCol = 5;
constexpr int kNumCols = 6;

class ExprGen {
 public:
  explicit ExprGen(uint32_t seed) : rng_(seed) {}

  // `allow_string`: whether this node may produce a string value. The
  // interpreter throws on arithmetic/negation over strings (the compiled
  // engine's one documented carve-out), so arithmetic operands are always
  // generated string-free; comparisons, AND/OR, and NOT accept anything.
  ExprPtr Make(int depth, bool allow_string) {
    if (depth <= 0 || Pick(4) == 0) return Leaf(allow_string);
    switch (Pick(6)) {
      case 0: {  // comparison
        static const BinaryOp kCmp[] = {BinaryOp::kEq, BinaryOp::kNe,
                                        BinaryOp::kLt, BinaryOp::kLe,
                                        BinaryOp::kGt, BinaryOp::kGe};
        return Bin(kCmp[Pick(6)], Make(depth - 1, true),
                   Make(depth - 1, true));
      }
      case 1: {  // arithmetic (numeric operands only)
        static const BinaryOp kArith[] = {BinaryOp::kAdd, BinaryOp::kSub,
                                          BinaryOp::kMul, BinaryOp::kDiv};
        return Bin(kArith[Pick(4)], Make(depth - 1, false),
                   Make(depth - 1, false));
      }
      case 2:
        return Bin(BinaryOp::kAnd, Make(depth - 1, true),
                   Make(depth - 1, true));
      case 3:
        return Bin(BinaryOp::kOr, Make(depth - 1, true),
                   Make(depth - 1, true));
      case 4:
        return Not(Make(depth - 1, true));
      default:
        return Neg(Make(depth - 1, false));
    }
  }

  Row MakeRow() {
    Row row;
    row.reserve(kNumCols);
    for (int i = 0; i < kNumIntCols; ++i) {
      row.push_back(Pick(5) == 0 ? Value::Null()
                                 : Value::Int(Pick(7) - 3));
    }
    for (int i = 0; i < kNumDoubleCols; ++i) {
      row.push_back(Pick(5) == 0
                        ? Value::Null()
                        : Value::Double((Pick(9) - 4) * 0.5));
    }
    switch (Pick(4)) {
      case 0: row.push_back(Value::Null()); break;
      case 1: row.push_back(Value::Str("")); break;
      case 2: row.push_back(Value::Str("abc")); break;
      default: row.push_back(Value::Str("zz")); break;
    }
    return row;
  }

 private:
  int Pick(int n) { return static_cast<int>(rng_() % n); }

  ExprPtr Leaf(bool allow_string) {
    switch (Pick(allow_string ? 6 : 5)) {
      case 0: return LitInt(Pick(7) - 3);
      case 1: return LitDouble((Pick(9) - 4) * 0.5);
      case 2: return Lit(Value::Null());
      case 3: return ColAt(Pick(kNumIntCols));
      case 4: return ColAt(kNumIntCols + Pick(kNumDoubleCols));
      default: return ColAt(kStringCol);
    }
  }

  std::mt19937 rng_;
};

TEST(CompiledDifferentialTest, GeneratedExpressionsMatchInterpreter) {
  ExprGen gen(20240807);
  std::vector<Row> rows;
  for (int i = 0; i < 32; ++i) rows.push_back(gen.MakeRow());
  rows.push_back(Row(kNumCols, Value::Null()));  // all-NULL row
  Row zeros;
  for (int i = 0; i < kNumIntCols; ++i) zeros.push_back(Value::Int(0));
  for (int i = 0; i < kNumDoubleCols; ++i) zeros.push_back(Value::Double(0));
  zeros.push_back(Value::Str(""));
  rows.push_back(zeros);

  for (int i = 0; i < 400; ++i) {
    ExprPtr e = gen.Make(4, true);
    for (const Row& row : rows) {
      ExpectSameOnRow(*e, row);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// ---------------------------------------------------------------------------
// Three-valued logic, coercion, short-circuiting, fused paths
// ---------------------------------------------------------------------------

TEST(CompiledDifferentialTest, KleeneTruthTables) {
  // TRUE = 1, FALSE = 0, NULL via the row so constant folding cannot
  // pre-evaluate the connective.
  const Value cases[] = {Value::Bool(true), Value::Bool(false), Value::Null()};
  for (const Value& l : cases) {
    for (const Value& r : cases) {
      Row row = {l, r};
      ExpectSameOnRow(*Bin(BinaryOp::kAnd, ColAt(0), ColAt(1)), row);
      ExpectSameOnRow(*Bin(BinaryOp::kOr, ColAt(0), ColAt(1)), row);
      ExpectSameOnRow(*Not(ColAt(0)), row);
    }
  }
  // Spot-check the SQL-defining corners directly.
  EvalScratch scratch;
  CompiledExpr and_prog =
      CompiledExpr::Compile(*Bin(BinaryOp::kAnd, ColAt(0), ColAt(1)));
  CompiledExpr or_prog =
      CompiledExpr::Compile(*Bin(BinaryOp::kOr, ColAt(0), ColAt(1)));
  // FALSE AND NULL = FALSE (not NULL).
  Value v = and_prog.Run({Value::Bool(false), Value::Null()}, &scratch);
  ASSERT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 0);
  // TRUE AND NULL = NULL.
  EXPECT_TRUE(and_prog.Run({Value::Bool(true), Value::Null()}, &scratch)
                  .is_null());
  // TRUE OR NULL = TRUE.
  v = or_prog.Run({Value::Null(), Value::Bool(true)}, &scratch);
  ASSERT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 1);
  // FALSE OR NULL = NULL.
  EXPECT_TRUE(or_prog.Run({Value::Bool(false), Value::Null()}, &scratch)
                  .is_null());
}

TEST(CompiledDifferentialTest, NumericCoercionAndDivision) {
  const Row row = {Value::Int(7), Value::Int(0), Value::Int(-2),
                   Value::Double(7.0), Value::Double(0.5), Value::Str("x")};
  std::vector<ExprPtr> exprs;
  exprs.push_back(Bin(BinaryOp::kEq, ColAt(0), ColAt(3)));  // 7 == 7.0
  exprs.push_back(Bin(BinaryOp::kLt, ColAt(2), ColAt(4)));
  exprs.push_back(Bin(BinaryOp::kAdd, ColAt(0), ColAt(2)));  // int-preserving
  exprs.push_back(Bin(BinaryOp::kAdd, ColAt(0), ColAt(4)));  // promotes
  exprs.push_back(Bin(BinaryOp::kDiv, ColAt(0), ColAt(2)));  // -> double
  exprs.push_back(Bin(BinaryOp::kDiv, ColAt(0), ColAt(1)));  // /0 -> NULL
  exprs.push_back(Bin(BinaryOp::kDiv, ColAt(3), ColAt(1)));
  exprs.push_back(Neg(ColAt(2)));
  exprs.push_back(Neg(ColAt(4)));
  exprs.push_back(Not(ColAt(1)));
  exprs.push_back(Not(ColAt(5)));  // string truthiness
  for (const ExprPtr& e : exprs) ExpectSameOnRow(*e, row);
}

TEST(CompiledDifferentialTest, ShortCircuitSkipsRightHandSide) {
  // (c0 < 0) AND (c1 / c2 > 1): when c0 >= 0 the conjunction is definite
  // false whatever the division yields; compiled and interpreted agree on
  // every combination including the NULL-producing division by zero.
  ExprPtr e = Bin(BinaryOp::kAnd, Bin(BinaryOp::kLt, ColAt(0), LitInt(0)),
                  Bin(BinaryOp::kGt,
                      Bin(BinaryOp::kDiv, ColAt(1), ColAt(2)), LitInt(1)));
  for (int64_t c0 : {-1, 0, 1}) {
    for (int64_t c2 : {0, 1, 2}) {
      Row row = {Value::Int(c0), Value::Int(4), Value::Int(c2)};
      ExpectSameOnRow(*e, row);
    }
  }
  ExprPtr o = Bin(BinaryOp::kOr, Bin(BinaryOp::kGe, ColAt(0), LitInt(0)),
                  Bin(BinaryOp::kGt,
                      Bin(BinaryOp::kDiv, ColAt(1), ColAt(2)), LitInt(1)));
  for (int64_t c0 : {-1, 0, 1}) {
    for (int64_t c2 : {0, 1, 2}) {
      Row row = {Value::Int(c0), Value::Int(4), Value::Int(c2)};
      ExpectSameOnRow(*o, row);
    }
  }
}

TEST(CompiledDifferentialTest, FusedComparisonsMatchGeneralPath) {
  // col-vs-int-constant (both orders, all operators) and col-vs-col fuse
  // into single instructions; semantics must not change.
  static const BinaryOp kCmp[] = {BinaryOp::kEq, BinaryOp::kNe,
                                  BinaryOp::kLt, BinaryOp::kLe,
                                  BinaryOp::kGt, BinaryOp::kGe};
  std::vector<Row> rows = {
      {Value::Int(2), Value::Int(5)},      {Value::Int(5), Value::Int(5)},
      {Value::Int(9), Value::Int(-1)},     {Value::Null(), Value::Int(5)},
      {Value::Double(5.0), Value::Int(5)}, {Value::Double(4.5), Value::Null()},
  };
  for (BinaryOp op : kCmp) {
    ExprPtr fused = Bin(op, ColAt(0), LitInt(5));
    ExprPtr flipped = Bin(op, LitInt(5), ColAt(0));
    ExprPtr colcol = Bin(op, ColAt(0), ColAt(1));
    CompiledExpr prog = CompiledExpr::Compile(*fused);
    EXPECT_EQ(prog.num_ops(), 1u) << fused->ToString();  // really fused
    for (const Row& row : rows) {
      ExpectSameOnRow(*fused, row);
      ExpectSameOnRow(*flipped, row);
      ExpectSameOnRow(*colcol, row);
    }
  }
}

TEST(CompiledDifferentialTest, ConstantFolding) {
  ExprPtr e = Bin(BinaryOp::kMul, Bin(BinaryOp::kAdd, LitInt(2), LitInt(3)),
                  LitInt(4));
  CompiledExpr prog = CompiledExpr::Compile(*e);
  ASSERT_TRUE(prog.valid());
  EXPECT_EQ(prog.num_ops(), 1u);  // folded to one kPushConst
  EvalScratch scratch;
  Value v = prog.Run({}, &scratch);
  ASSERT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 20);
  // Folding must not change column-dependent subtrees.
  ExprPtr mixed = Bin(BinaryOp::kAdd, e, ColAt(0));
  ExpectSameOnRow(*mixed, {Value::Int(1)});
}

// ---------------------------------------------------------------------------
// PackedKey / KeyCodec
// ---------------------------------------------------------------------------

TEST(KeyCodecTest, UsabilityGating) {
  EXPECT_TRUE(KeyCodec::ForTypes({DataType::kInt64}).usable());
  EXPECT_TRUE(
      KeyCodec::ForTypes({DataType::kInt64, DataType::kDouble}).usable());
  EXPECT_TRUE(KeyCodec::ForTypes({}).usable());
  EXPECT_FALSE(
      KeyCodec::ForTypes({DataType::kInt64, DataType::kString}).usable());
  std::vector<DataType> nine(9, DataType::kInt64);
  EXPECT_FALSE(KeyCodec::ForTypes(nine).usable());
  EXPECT_FALSE(KeyCodec().usable());
}

TEST(KeyCodecTest, EqualityMatchesRowEqOnNumericKeys) {
  KeyCodec codec =
      KeyCodec::ForTypes({DataType::kInt64, DataType::kDouble});
  ASSERT_TRUE(codec.usable());
  std::vector<Row> keys = {
      {Value::Int(1), Value::Double(2.5)},
      {Value::Int(1), Value::Double(2.5)},
      {Value::Double(1.0), Value::Double(2.5)},  // 1.0 == 1 canonically
      {Value::Int(1), Value::Int(2)},
      {Value::Null(), Value::Double(2.5)},
      {Value::Int(0), Value::Double(2.5)},  // NULL != 0
      {Value::Int(-1), Value::Double(-2.5)},
      {Value::Int(1), Value::Double(2.5000001)},
  };
  RowEq row_eq;
  for (const Row& a : keys) {
    for (const Row& b : keys) {
      PackedKey pa, pb;
      codec.EncodeRow(a, &pa);
      codec.EncodeRow(b, &pb);
      EXPECT_EQ(pa == pb, row_eq(a, b))
          << RowToString(a) << " vs " << RowToString(b);
      if (pa == pb) EXPECT_EQ(pa.hash(), pb.hash());
    }
  }
}

TEST(KeyCodecTest, EncodeAtGathersPositions) {
  KeyCodec codec =
      KeyCodec::ForTypes({DataType::kInt64, DataType::kInt64});
  Row row = {Value::Str("skip"), Value::Int(7), Value::Double(1.0),
             Value::Int(9)};
  PackedKey gathered, direct;
  codec.EncodeAt(row, {1, 3}, &gathered);
  codec.Encode((Row{Value::Int(7), Value::Int(9)}).data(), 2, &direct);
  EXPECT_EQ(gathered, direct);
}

TEST(KeyCodecTest, RandomRowsAgreeWithRowSemantics) {
  std::mt19937 rng(7);
  KeyCodec codec = KeyCodec::ForTypes(
      {DataType::kInt64, DataType::kDouble, DataType::kInt64});
  RowEq row_eq;
  RowHash row_hash;
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) {
    Row r;
    int v0 = static_cast<int>(rng() % 4);
    r.push_back(v0 == 0 ? Value::Null() : Value::Int(v0));
    int v1 = static_cast<int>(rng() % 4);
    r.push_back(v1 == 0 ? Value::Null() : Value::Double(v1 * 0.5));
    // Mix int and integral-double representations of the same number.
    int v2 = static_cast<int>(rng() % 3);
    r.push_back(rng() % 2 == 0 ? Value::Int(v2)
                               : Value::Double(static_cast<double>(v2)));
    rows.push_back(std::move(r));
  }
  for (const Row& a : rows) {
    for (const Row& b : rows) {
      PackedKey pa, pb;
      codec.EncodeRow(a, &pa);
      codec.EncodeRow(b, &pb);
      ASSERT_EQ(pa == pb, row_eq(a, b))
          << RowToString(a) << " vs " << RowToString(b);
      if (row_eq(a, b)) {
        // Mirrors the RowHash contract (integral doubles canonicalized).
        ASSERT_EQ(row_hash(a), row_hash(b));
        ASSERT_EQ(pa.hash(), pb.hash());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Whole-workload on/off differential: flipping the compiled engine (and with
// it the packed key codecs) must not change any query result, on either
// engine, at any thread count.
// ---------------------------------------------------------------------------

void ExpectSameRows(const TablePtr& a, const TablePtr& b,
                    const std::string& ctx) {
  ASSERT_EQ(a->num_rows(), b->num_rows()) << ctx;
  std::vector<Row> ra = a->rows(), rb = b->rows();
  std::sort(ra.begin(), ra.end(), RowLess());
  std::sort(rb.begin(), rb.end(), RowLess());
  for (size_t i = 0; i < ra.size(); ++i) {
    ASSERT_EQ(CompareRows(ra[i], rb[i]), 0) << ctx << " row " << i;
  }
}

TEST(CompiledWorkloadTest, EngineOnOffIdenticalResults) {
  CompiledFlagGuard guard;
  std::unique_ptr<Database> db = bench::MakeScoreDb(480);
  for (const bench::NamedQuery& q : bench::Figure1Queries()) {
    for (int threads : {1, 4}) {
      ExecOptions exec;
      exec.num_threads = threads;
      SetCompiledExprEnabled(true);
      Result<TablePtr> on = db->Query(q.sql, exec);
      SetCompiledExprEnabled(false);
      Result<TablePtr> off = db->Query(q.sql, exec);
      SetCompiledExprEnabled(true);
      ASSERT_TRUE(on.ok()) << q.name << ": " << on.status().ToString();
      ASSERT_TRUE(off.ok()) << q.name << ": " << off.status().ToString();
      ExpectSameRows(*on, *off,
                     q.name + " baseline t=" + std::to_string(threads));
      if (::testing::Test::HasFatalFailure()) return;

      IcebergOptions iceberg;
      iceberg.base_exec.num_threads = threads;
      SetCompiledExprEnabled(true);
      Result<TablePtr> ion = db->QueryIceberg(q.sql, iceberg);
      SetCompiledExprEnabled(false);
      Result<TablePtr> ioff = db->QueryIceberg(q.sql, iceberg);
      SetCompiledExprEnabled(true);
      ASSERT_TRUE(ion.ok()) << q.name << ": " << ion.status().ToString();
      ASSERT_TRUE(ioff.ok()) << q.name << ": " << ioff.status().ToString();
      ExpectSameRows(*ion, *ioff,
                     q.name + " nljp t=" + std::to_string(threads));
      ExpectSameRows(*on, *ion, q.name + " engines");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(CompiledWorkloadTest, ExplainShowsCompiledPrograms) {
  std::unique_ptr<Database> db = bench::MakeScoreDb(120);
  SetCompiledExprEnabled(true);
  Result<std::string> plan =
      db->ExplainBaseline(bench::SkybandSql("hits", "hruns", 10));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("[compiled:"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("key=packed["), std::string::npos) << *plan;
}

}  // namespace
}  // namespace iceberg
