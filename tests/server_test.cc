// Serving-layer units: admission control (queue bound, shed order, budget
// apportionment), retry policy determinism, statement shapes, snapshot
// pinning, cross-query cache promotion, and the per-attempt governor
// lifecycle (no double counting under retries).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "src/nljp/shared_cache.h"
#include "src/obs/metrics.h"
#include "src/server/admission.h"
#include "src/server/chaos.h"
#include "src/server/retry.h"
#include "src/server/session.h"
#include "src/common/shape.h"

namespace iceberg {
namespace {

// ---------------------------------------------------------------------------
// Status retryability
// ---------------------------------------------------------------------------

TEST(StatusRetryable, OverloadedIsAlwaysRetryable) {
  Status st = Status::Overloaded("queue full");
  EXPECT_TRUE(st.IsOverloaded());
  EXPECT_TRUE(st.IsRetryable());
}

TEST(StatusRetryable, MarkRetryableTagsTransients) {
  EXPECT_FALSE(Status::Cancelled("deadline exceeded").IsRetryable());
  EXPECT_FALSE(Status::ResourceExhausted("row limit").IsRetryable());
  EXPECT_TRUE(Status::Cancelled("chaos").MarkRetryable().IsRetryable());
  EXPECT_TRUE(
      Status::ResourceExhausted("shared").MarkRetryable().IsRetryable());
  // OK can never be marked retryable.
  EXPECT_FALSE(Status::OK().MarkRetryable().IsRetryable());
}

TEST(StatusRetryable, FlagSurvivesCopies) {
  Status st = Status::Cancelled("chaos").MarkRetryable();
  Status copy = st;
  EXPECT_TRUE(copy.IsRetryable());
  EXPECT_NE(copy.ToString().find("retryable"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Query shapes
// ---------------------------------------------------------------------------

TEST(QueryShapeTest, FingerprintNormalizesCaseAndWhitespace) {
  QueryShape a = ComputeQueryShape("SELECT  x FROM t1   WHERE x > 5");
  QueryShape b = ComputeQueryShape("select x\nfrom t1 where x > 5");
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.normalized, "select x from t1 where x > 5");
}

TEST(QueryShapeTest, FingerprintKeepsLiterals) {
  // Different constants => different results => different cache keys.
  QueryShape a = ComputeQueryShape("SELECT x FROM t WHERE x > 5");
  QueryShape b = ComputeQueryShape("SELECT x FROM t WHERE x > 6");
  EXPECT_NE(a.fingerprint, b.fingerprint);
  // ... but the same shape for per-shape observability.
  EXPECT_EQ(a.shape_hash, b.shape_hash);
  EXPECT_EQ(a.shape, "select x from t where x > ?");
}

TEST(QueryShapeTest, StringLiteralsPreservedInNormalizedForm) {
  QueryShape a = ComputeQueryShape("SELECT x FROM t WHERE s = 'ABC def'");
  // Case inside the literal is untouched; outside it is lowered.
  EXPECT_EQ(a.normalized, "select x from t where s = 'ABC def'");
  EXPECT_EQ(a.shape, "select x from t where s = ?");
  QueryShape b = ComputeQueryShape("SELECT x FROM t WHERE s = 'other'");
  EXPECT_NE(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.shape_hash, b.shape_hash);
}

TEST(QueryShapeTest, DigitsInsideIdentifiersAreNotLiterals) {
  QueryShape a = ComputeQueryShape("SELECT c1 FROM t1");
  EXPECT_EQ(a.shape, "select c1 from t1");
  EXPECT_EQ(a.fingerprint, a.shape_hash);  // no literals => same hash input
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, OnlyRetryableStatusesRetry) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  EXPECT_TRUE(policy.ShouldRetry(Status::Overloaded("shed"), 1));
  EXPECT_TRUE(policy.ShouldRetry(
      Status::Cancelled("chaos").MarkRetryable(), 2));
  EXPECT_FALSE(policy.ShouldRetry(Status::Overloaded("shed"), 3));  // budget
  EXPECT_FALSE(policy.ShouldRetry(Status::Cancelled("user"), 1));
  EXPECT_FALSE(policy.ShouldRetry(Status::ParseError("syntax"), 1));
  EXPECT_FALSE(policy.ShouldRetry(Status::OK(), 1));
}

TEST(RetryPolicyTest, BackoffIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 4;
  policy.max_backoff_ms = 32;
  policy.jitter_seed = 42;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    int64_t b1 = policy.BackoffMs(attempt);
    int64_t b2 = policy.BackoffMs(attempt);
    EXPECT_EQ(b1, b2) << "jitter must be a pure function of (seed, attempt)";
    int64_t base = std::min<int64_t>(4LL << (attempt - 1), 32);
    EXPECT_GE(b1, (base + 1) / 2);
    EXPECT_LE(b1, base);
  }
}

TEST(RetryPolicyTest, DifferentSeedsDesynchronize) {
  RetryPolicy a, b;
  a.initial_backoff_ms = b.initial_backoff_ms = 64;
  a.max_backoff_ms = b.max_backoff_ms = 4096;
  a.jitter_seed = 1;
  b.jitter_seed = 2;
  bool differ = false;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    differ |= a.BackoffMs(attempt) != b.BackoffMs(attempt);
  }
  EXPECT_TRUE(differ);
}

TEST(RetryPolicyTest, NonePolicyNeverRetries) {
  RetryPolicy none = RetryPolicy::None();
  EXPECT_FALSE(none.ShouldRetry(Status::Overloaded("shed"), 1));
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(AdmissionTest, BudgetApportionmentArithmetic) {
  AdmissionConfig config;
  config.max_concurrent = 4;
  config.memory_budget_bytes = 1 << 20;
  config.thread_budget = 8;
  EXPECT_EQ(AdmissionController::MemoryGrant(config), (1u << 20) / 4);
  EXPECT_EQ(AdmissionController::ThreadGrant(config), 2);

  config.thread_budget = 2;  // fewer threads than slots: floor at 1
  EXPECT_EQ(AdmissionController::ThreadGrant(config), 1);

  config.memory_budget_bytes = 0;  // ungoverned pool
  EXPECT_EQ(AdmissionController::MemoryGrant(config), 0u);
  config.thread_budget = 0;
  EXPECT_EQ(AdmissionController::ThreadGrant(config), 0);

  config.max_concurrent = 0;  // degenerate config clamps to one slot
  config.memory_budget_bytes = 512;
  EXPECT_EQ(AdmissionController::MemoryGrant(config), 512u);
}

TEST(AdmissionTest, GrantsFlowIntoTickets) {
  AdmissionConfig config;
  config.max_concurrent = 2;
  config.memory_budget_bytes = 1024;
  config.thread_budget = 4;
  AdmissionController admission(config);
  auto ticket = admission.Admit();
  ASSERT_TRUE(ticket.ok());
  EXPECT_EQ(ticket->memory_grant_bytes, 512u);
  EXPECT_EQ(ticket->thread_grant, 2);
  EXPECT_EQ(admission.in_flight(), 1u);
  admission.Release(*ticket);
  EXPECT_EQ(admission.in_flight(), 0u);
}

TEST(AdmissionTest, QueueFullShedsImmediatelyWithRetryableOverload) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.max_queue_depth = 0;  // no waiting room at all
  AdmissionController admission(config);
  auto first = admission.Admit();
  ASSERT_TRUE(first.ok());
  auto second = admission.Admit();  // slot busy, queue full -> immediate shed
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsOverloaded());
  EXPECT_TRUE(second.status().IsRetryable());
  EXPECT_EQ(admission.shed_queue_full_total(), 1u);
  admission.Release(*first);
  // Slot free again: next admit succeeds.
  auto third = admission.Admit();
  ASSERT_TRUE(third.ok());
  admission.Release(*third);
}

TEST(AdmissionTest, QueueTimeoutShedsWithRetryableOverload) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.max_queue_depth = 4;
  config.queue_timeout_ms = 30;
  AdmissionController admission(config);
  auto first = admission.Admit();
  ASSERT_TRUE(first.ok());
  auto start = std::chrono::steady_clock::now();
  auto second = admission.Admit();  // queues, then times out
  auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsOverloaded());
  EXPECT_GE(waited, 25);
  EXPECT_EQ(admission.shed_timeout_total(), 1u);
  EXPECT_EQ(admission.queued(), 0u) << "timed-out waiter must leave queue";
  admission.Release(*first);
}

TEST(AdmissionTest, FifoOrderNoStarvation) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.max_queue_depth = 8;
  config.queue_timeout_ms = 0;  // wait forever: order must guarantee progress
  AdmissionController admission(config);
  auto gate = admission.Admit();
  ASSERT_TRUE(gate.ok());

  std::mutex mu;
  std::vector<int> admitted_order;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&, i] {
      auto ticket = admission.Admit();
      ASSERT_TRUE(ticket.ok());
      {
        std::lock_guard<std::mutex> lock(mu);
        admitted_order.push_back(i);
      }
      admission.Release(*ticket);
    });
    // Serialize arrival so FIFO order is well-defined.
    while (admission.queued() < static_cast<size_t>(i + 1)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  admission.Release(*gate);  // open the floodgate
  for (auto& t : waiters) t.join();
  EXPECT_EQ(admitted_order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(admission.admitted_total(), 5u);
}

// ---------------------------------------------------------------------------
// Snapshot pinning
// ---------------------------------------------------------------------------

Database MakeTinyDb() {
  Database db;
  EXPECT_TRUE(db.CreateTable("obj", Schema({{"id", DataType::kInt64},
                                            {"x", DataType::kInt64},
                                            {"y", DataType::kInt64}}))
                  .ok());
  EXPECT_TRUE(db.DeclareKey("obj", {"id"}).ok());
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(db.Insert("obj", {Value::Int(i), Value::Int(i % 5),
                                  Value::Int((i * 7) % 11)})
                    .ok());
  }
  return db;
}

TEST(SnapshotTest, MutationInvalidatesPins) {
  Database db = MakeTinyDb();
  auto pins = db.SnapshotTables();
  ASSERT_EQ(pins.size(), 1u);
  auto table = db.GetTable("obj");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*table)->SnapshotValid(pins[0].second));

  uint64_t hash_before = db.CatalogVersionHash();
  ASSERT_TRUE(db.Insert("obj", {Value::Int(99), Value::Int(1), Value::Int(2)})
                  .ok());
  EXPECT_FALSE((*table)->SnapshotValid(pins[0].second));
  EXPECT_NE(db.CatalogVersionHash(), hash_before)
      << "catalog hash must rotate on any table mutation";
}

// ---------------------------------------------------------------------------
// Cross-query NLJP cache registry
// ---------------------------------------------------------------------------

TEST(CacheRegistryTest, ReusesByKeyAndEvictsLru) {
  NljpCacheRegistry registry(/*max_caches=*/2, /*max_entries_per_cache=*/64);
  auto make = [] {
    SharedNljpCache::Options opts;
    opts.stripes = 4;
    return opts;
  };
  auto a = registry.GetOrCreate(1, make);
  auto a_again = registry.GetOrCreate(1, make);
  EXPECT_EQ(a.get(), a_again.get()) << "same key must reuse the same cache";
  auto b = registry.GetOrCreate(2, make);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(registry.num_caches(), 2u);
  // Touch key 1 so key 2 is the LRU, then force an eviction.
  registry.GetOrCreate(1, make);
  registry.GetOrCreate(3, make);
  EXPECT_EQ(registry.num_caches(), 2u);
  auto b_again = registry.GetOrCreate(2, make);
  EXPECT_NE(b.get(), b_again.get()) << "key 2 was evicted as LRU";
}

TEST(CacheRegistryTest, ServerPromotesCachesAcrossStatements) {
  Database db = MakeTinyDb();
  ServerConfig config;
  config.retry = RetryPolicy::None();
  IcebergServer server(&db, config);
  auto session = server.OpenSession();

  const std::string sql =
      "SELECT L.id, COUNT(*) FROM obj L, obj R "
      "WHERE L.x <= R.x AND L.y <= R.y AND (L.x < R.x OR L.y < R.y) "
      "GROUP BY L.id HAVING COUNT(*) <= 50";
  QueryOutcome first = session->Execute(sql);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  size_t caches_after_first = server.cache_registry().num_caches();
  EXPECT_GE(caches_after_first, 1u)
      << "iceberg statement must promote its NLJP cache into the registry";

  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  QueryOutcome second = session->Execute(sql);
  ASSERT_TRUE(second.status.ok());
  MetricsSnapshot delta =
      MetricsRegistry::Global().Snapshot().DiffSince(before);
  EXPECT_GE(delta.counters["nljp.registry.hits"], 1u)
      << "identical statement must hit the promoted cache";
  EXPECT_EQ(server.cache_registry().num_caches(), caches_after_first);

  // Results are identical across the cold and warm runs.
  ASSERT_TRUE(first.table != nullptr && second.table != nullptr);
  EXPECT_EQ(first.table->num_rows(), second.table->num_rows());

  // A mutation rotates the catalog hash, so the same statement now keys a
  // *new* cache (the stale one ages out of the MRU list).
  ASSERT_TRUE(server.Insert("obj", {Value::Int(100), Value::Int(2),
                                    Value::Int(3)})
                  .ok());
  QueryOutcome third = session->Execute(sql);
  ASSERT_TRUE(third.status.ok());
  EXPECT_GT(server.cache_registry().num_caches(), caches_after_first)
      << "mutation must rotate the cross-query cache key";
}

// ---------------------------------------------------------------------------
// Session execution, retries, and the per-attempt governor lifecycle
// ---------------------------------------------------------------------------

TEST(SessionTest, ExecutesAndMatchesDirectResult) {
  Database db = MakeTinyDb();
  IcebergServer server(&db);
  auto session = server.OpenSession();
  QueryOutcome outcome =
      session->Execute("SELECT id FROM obj WHERE x > 2");
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.attempts, 1);
  ASSERT_NE(outcome.table, nullptr);

  auto direct = db.QueryIceberg("SELECT id FROM obj WHERE x > 2");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(outcome.table->num_rows(), (*direct)->num_rows());
}

TEST(SessionTest, BaselinePathServedToo) {
  Database db = MakeTinyDb();
  IcebergServer server(&db);
  auto session = server.OpenSession();
  QueryOutcome outcome =
      session->ExecuteBaseline("SELECT id FROM obj WHERE x > 2");
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_GT(outcome.exec_stats.join_pairs_examined +
                outcome.table->num_rows(),
            0u);
}

TEST(SessionTest, NonRetryableFailureReturnsWithoutRetry) {
  Database db = MakeTinyDb();
  ServerConfig config;
  config.retry.max_attempts = 5;
  IcebergServer server(&db, config);
  auto session = server.OpenSession();
  QueryOutcome outcome = session->Execute("SELECT FROM nonsense !!");
  ASSERT_FALSE(outcome.status.ok());
  EXPECT_FALSE(outcome.status.IsRetryable());
  EXPECT_EQ(outcome.attempts, 1) << "parse errors must not burn retries";
}

// Satellite: every retry attempt gets a *fresh* governor (they are
// single-use) and fresh stats/report, so governor metrics reconcile
// exactly: governor.queries delta == attempts, no double counting.
TEST(SessionTest, RetryAttemptsUseFreshGovernors) {
  Database db = MakeTinyDb();
  ServerConfig config;
  config.retry.max_attempts = 3;
  config.retry.initial_backoff_ms = 1;
  config.retry.max_backoff_ms = 2;
  // A shared (admission-granted) budget far too small for the join: every
  // attempt exhausts it retryably, so the retry loop runs to its bound.
  config.admission.max_concurrent = 1;
  config.admission.memory_budget_bytes = 64;
  IcebergServer server(&db, config);
  auto session = server.OpenSession();

  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  QueryOutcome outcome = session->Execute(
      "SELECT L.id, COUNT(*) FROM obj L, obj R "
      "WHERE L.x <= R.x GROUP BY L.id HAVING COUNT(*) <= 50");
  MetricsSnapshot delta =
      MetricsRegistry::Global().Snapshot().DiffSince(before);

  ASSERT_FALSE(outcome.status.ok());
  EXPECT_TRUE(outcome.status.IsRetryable())
      << "shared-budget exhaustion must surface retryably: "
      << outcome.status.ToString();
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(delta.counters["governor.queries"],
            static_cast<uint64_t>(outcome.attempts))
      << "each attempt must run under its own single-use governor";
  EXPECT_EQ(delta.counters["server.retries"], 2u);
  EXPECT_GT(outcome.backoff_total_ms, 0);
}

TEST(SessionTest, SharedBudgetLargeEnoughSucceedsFirstTry) {
  Database db = MakeTinyDb();
  ServerConfig config;
  config.admission.max_concurrent = 2;
  config.admission.memory_budget_bytes = 64u << 20;
  IcebergServer server(&db, config);
  auto session = server.OpenSession();
  QueryOutcome outcome = session->Execute(
      "SELECT L.id, COUNT(*) FROM obj L, obj R "
      "WHERE L.x <= R.x GROUP BY L.id HAVING COUNT(*) <= 50");
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
  EXPECT_EQ(outcome.attempts, 1);
}

TEST(SessionTest, ConcurrentSessionsAllServed) {
  Database db = MakeTinyDb();
  ServerConfig config;
  config.admission.max_concurrent = 2;
  config.admission.max_queue_depth = 16;
  config.admission.queue_timeout_ms = 5000;
  IcebergServer server(&db, config);

  constexpr int kSessions = 6;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&server, &ok] {
      auto session = server.OpenSession();
      QueryOutcome outcome =
          session->Execute("SELECT id FROM obj WHERE x > 1");
      if (outcome.status.ok()) ok.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kSessions)
      << "bounded queue + FIFO admission must serve a modest burst fully";
}

}  // namespace
}  // namespace iceberg
