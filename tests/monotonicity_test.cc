// Tests for the HAVING-condition classifier: the paper's Table 2 plus
// composition rules, corrected for MIN per Definition 1 (adding tuples can
// only lower a MIN, so MIN <= c is the monotone direction).

#include <gtest/gtest.h>

#include "src/parser/parser.h"
#include "src/rewrite/monotonicity.h"

namespace iceberg {
namespace {

Monotonicity Classify(const std::string& text, bool nonneg = false) {
  ExprPtr e = *ParseExpression(text);
  NonNegativeHint hint = [nonneg](const ExprPtr&) { return nonneg; };
  return ClassifyHaving(e, hint);
}

struct Table2Case {
  const char* condition;
  bool nonneg;
  Monotonicity expected;
};

class Table2Test : public ::testing::TestWithParam<Table2Case> {};

TEST_P(Table2Test, Classification) {
  const Table2Case& c = GetParam();
  EXPECT_EQ(Classify(c.condition, c.nonneg), c.expected)
      << c.condition;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable2, Table2Test,
    ::testing::Values(
        // Monotone column of Table 2.
        Table2Case{"COUNT(*) >= 20", false, Monotonicity::kMonotone},
        Table2Case{"COUNT(a) >= 5", false, Monotonicity::kMonotone},
        Table2Case{"SUM(a) >= 100", true, Monotonicity::kMonotone},
        Table2Case{"MAX(a) >= 7", false, Monotonicity::kMonotone},
        Table2Case{"COUNT(DISTINCT a) >= 3", false, Monotonicity::kMonotone},
        // Anti-monotone column.
        Table2Case{"COUNT(*) <= 20", false, Monotonicity::kAntiMonotone},
        Table2Case{"COUNT(a) <= 5", false, Monotonicity::kAntiMonotone},
        Table2Case{"SUM(a) <= 100", true, Monotonicity::kAntiMonotone},
        Table2Case{"MAX(a) <= 7", false, Monotonicity::kAntiMonotone},
        Table2Case{"COUNT(DISTINCT a) <= 3", false,
                   Monotonicity::kAntiMonotone},
        // MIN per Definition 1 (see header comment).
        Table2Case{"MIN(a) <= 7", false, Monotonicity::kMonotone},
        Table2Case{"MIN(a) >= 7", false, Monotonicity::kAntiMonotone},
        // Strict comparisons behave like their weak counterparts.
        Table2Case{"COUNT(*) > 20", false, Monotonicity::kMonotone},
        Table2Case{"COUNT(*) < 20", false, Monotonicity::kAntiMonotone},
        // SUM without the non-negative domain guarantee is unknown.
        Table2Case{"SUM(a) >= 100", false, Monotonicity::kNeither},
        Table2Case{"SUM(a) <= 100", false, Monotonicity::kNeither},
        // AVG and equality are never monotone.
        Table2Case{"AVG(a) >= 3", false, Monotonicity::kNeither},
        Table2Case{"COUNT(*) = 20", false, Monotonicity::kNeither},
        Table2Case{"COUNT(*) <> 20", false, Monotonicity::kNeither}));

TEST(Monotonicity, ConstantOnLeftFlips) {
  EXPECT_EQ(Classify("20 <= COUNT(*)"), Monotonicity::kMonotone);
  EXPECT_EQ(Classify("20 >= COUNT(*)"), Monotonicity::kAntiMonotone);
}

TEST(Monotonicity, ConjunctionComposition) {
  EXPECT_EQ(Classify("COUNT(*) >= 2 AND MAX(a) >= 5"),
            Monotonicity::kMonotone);
  EXPECT_EQ(Classify("COUNT(*) <= 2 AND MAX(a) <= 5"),
            Monotonicity::kAntiMonotone);
  EXPECT_EQ(Classify("COUNT(*) >= 2 AND COUNT(*) <= 5"),
            Monotonicity::kNeither);
}

TEST(Monotonicity, DisjunctionComposition) {
  EXPECT_EQ(Classify("COUNT(*) >= 2 OR MAX(a) >= 5"),
            Monotonicity::kMonotone);
  EXPECT_EQ(Classify("COUNT(*) <= 2 OR COUNT(*) >= 9"),
            Monotonicity::kNeither);
}

TEST(Monotonicity, NotFlips) {
  EXPECT_EQ(Classify("NOT COUNT(*) >= 20"), Monotonicity::kAntiMonotone);
  EXPECT_EQ(Classify("NOT COUNT(*) <= 20"), Monotonicity::kMonotone);
  EXPECT_EQ(Classify("NOT (NOT COUNT(*) >= 20)"), Monotonicity::kMonotone);
}

TEST(Monotonicity, NonAggregateConditions) {
  EXPECT_EQ(Classify("a >= 3"), Monotonicity::kNeither);
  EXPECT_EQ(Classify("COUNT(*) >= a"), Monotonicity::kNeither);  // non-const
  EXPECT_EQ(ClassifyHaving(nullptr), Monotonicity::kNeither);
}

TEST(Monotonicity, SumOfExpression) {
  // SUM(numSales * price) >= 1e6 from the paper's intro: monotone when the
  // hint confirms non-negativity of the product expression.
  EXPECT_EQ(Classify("SUM(numSales * price) >= 1000000", true),
            Monotonicity::kMonotone);
}

TEST(Monotonicity, Names) {
  EXPECT_STREQ(MonotonicityName(Monotonicity::kMonotone), "monotone");
  EXPECT_STREQ(MonotonicityName(Monotonicity::kAntiMonotone),
               "anti-monotone");
  EXPECT_STREQ(MonotonicityName(Monotonicity::kNeither), "neither");
}

}  // namespace
}  // namespace iceberg
